"""The random graph generator: well-formedness, determinism, coverage."""

import numpy as np
import pytest

from repro.fuzz import GeneratorConfig, generate_graph
from repro.fuzz.sampler import free_symbols
from repro.interp import evaluate
from repro.ir import print_graph, verify
from repro.ir.shapes import SymDim

SEEDS = range(40)


@pytest.mark.parametrize("seed", SEEDS)
def test_generated_graphs_are_verifier_clean(seed):
    graph = generate_graph(seed)
    verify(graph)


@pytest.mark.parametrize("seed", range(10))
def test_generation_is_deterministic(seed):
    a = generate_graph(seed)
    b = generate_graph(seed)
    assert print_graph(a) == print_graph(b)


def test_different_seeds_differ():
    texts = {print_graph(generate_graph(seed)) for seed in range(10)}
    assert len(texts) > 1


@pytest.mark.parametrize("seed", range(10))
def test_graphs_have_outputs_and_params(seed):
    graph = generate_graph(seed)
    assert graph.outputs
    assert graph.params
    assert all(out.op != "parameter" for out in graph.outputs)


def test_interior_symbols_are_derivable_from_params(seed=0):
    """Every symbol a node shape mentions must be bindable at run time:
    either a parameter shape carries it or the resolver can derive it."""
    from repro.numerics import resolve_all_dims

    for seed in range(20):
        graph = generate_graph(seed)
        bindings = {name: 3 for name in free_symbols(graph)}
        resolve_all_dims(graph.nodes, bindings)
        for node in graph.nodes:
            for dim in node.shape:
                if isinstance(dim, SymDim):
                    assert dim.name in bindings, \
                        f"seed {seed}: {node.short()} uses unbound {dim}"


def test_max_nodes_is_respected():
    config = GeneratorConfig(max_nodes=10)
    for seed in range(10):
        graph = generate_graph(seed, config)
        # emitters add a small bounded burst past the threshold
        assert len(graph.nodes) <= config.max_nodes + 8


def test_disabled_family_never_appears():
    config = GeneratorConfig()
    config.weights = dict(config.weights, matmul=0, composite=0)
    for seed in range(15):
        graph = generate_graph(seed, config)
        ops = {n.op for n in graph.nodes}
        assert "dot" not in ops
        assert ops.isdisjoint({"softmax", "gelu", "layer_norm"})


def test_op_coverage_across_seeds():
    """Across a modest seed range the generator exercises every family."""
    ops = set()
    for seed in range(60):
        ops |= {n.op for n in generate_graph(seed).nodes}
    for expected in ("add", "mul", "exp", "reshape", "transpose", "reduce",
                     "dot", "broadcast_in_dim", "select", "concat",
                     "slice", "gather", "cast", "iota", "softmax"):
        assert expected in ops, f"{expected} never generated"


def test_generated_graphs_evaluate_finite():
    """Sanitizer subgraphs keep float outputs finite for bounded inputs."""
    from repro.fuzz.oracle import make_inputs
    from repro.fuzz.sampler import binding_suite

    for seed in range(15):
        graph = generate_graph(seed)
        for bindings in binding_suite(graph, limit=2, seed=seed):
            outputs = evaluate(graph,
                               make_inputs(graph, bindings, seed))
            for out, node in zip(outputs, graph.outputs):
                if node.dtype.is_float:
                    assert np.isfinite(np.asarray(out)).all(), \
                        f"seed {seed} produced non-finite output"
