"""Edge shapes end to end: dim=1 collapse and zero-size tensors.

The classic dynamic-shape failure modes: a symbolic dim that is 1 at run
time (suddenly indistinguishable from a broadcast dim) and a dim that is 0
(every loop is empty, every buffer zero bytes).  Both must flow through the
interpreter, the compiled pipeline, schedule selection and the cost model
without crashing or diverging.
"""

import numpy as np
import pytest

from repro.core import CompileOptions, compile_graph
from repro.core.codegen.schedules import (select_elementwise,
                                          select_reduction)
from repro.device import A10
from repro.fuzz import DifferentialOracle
from repro.fuzz.oracle import make_inputs
from repro.interp import evaluate
from repro.ir import GraphBuilder, f32
from repro.runtime import ExecutionEngine


def _elementwise_graph():
    b = GraphBuilder("edge_ew")
    s, t = b.sym("s"), b.sym("t")
    x = b.parameter("x", (s, t, 4), f32)
    y = b.parameter("y", (t, 4), f32)
    z = b.mul(b.add(x, y), b.tanh(x))
    b.outputs(z)
    return b.graph


def _reduce_graph():
    b = GraphBuilder("edge_red")
    s, t = b.sym("s"), b.sym("t")
    x = b.parameter("x", (s, t), f32)
    b.outputs(b.reduce(x, "sum", (1,), False))
    return b.graph


def _matmul_graph():
    b = GraphBuilder("edge_mm")
    s, k = b.sym("s"), b.sym("k")
    x = b.parameter("x", (s, k), f32)
    w = b.parameter("w", (k, 3), f32)
    b.outputs(b.dot(x, w))
    return b.graph


# -- dim = 1 broadcast collapse ---------------------------------------------


@pytest.mark.parametrize("bindings", [
    {"s": 1, "t": 1}, {"s": 1, "t": 5}, {"s": 5, "t": 1},
])
def test_dim1_collapse_differential(bindings):
    oracle = DifferentialOracle()
    for graph in (_elementwise_graph(), _reduce_graph()):
        result = oracle.check_case(graph, bindings, input_seed=0)
        assert result.ok, [str(f) for f in result.failures]


def test_dim1_matmul_differential():
    oracle = DifferentialOracle()
    for bindings in ({"s": 1, "k": 1}, {"s": 1, "k": 7},
                     {"s": 7, "k": 1}):
        result = oracle.check_case(_matmul_graph(), bindings,
                                   input_seed=1)
        assert result.ok, [str(f) for f in result.failures]


# -- zero-size tensors -------------------------------------------------------


@pytest.mark.parametrize("bindings", [
    {"s": 0, "t": 3}, {"s": 3, "t": 0}, {"s": 0, "t": 0},
])
def test_zero_size_elementwise_interpreter_and_engine(bindings):
    graph = _elementwise_graph()
    inputs = make_inputs(graph, bindings, 0)
    reference = evaluate(graph, inputs)
    assert reference[0].shape == (bindings["s"], bindings["t"], 4)
    exe = compile_graph(graph, CompileOptions())
    outputs, stats = ExecutionEngine(exe, A10).run(inputs)
    assert outputs[0].shape == reference[0].shape
    assert np.array_equal(outputs[0], reference[0])
    assert np.isfinite(stats.device_time_us)


def test_zero_rows_sum_reduce():
    """Summing over an empty axis is well-defined (identity 0)."""
    graph = _reduce_graph()
    inputs = {"x": np.zeros((4, 0), np.float32)}
    (reference,) = evaluate(graph, inputs)
    assert reference.shape == (4,)
    assert np.array_equal(reference, np.zeros(4, np.float32))
    exe = compile_graph(graph, CompileOptions())
    (out,), _stats = ExecutionEngine(exe, A10).run(inputs)
    assert np.array_equal(np.asarray(out), reference)


def test_zero_size_matmul():
    """k = 0 contracts away to an all-zeros result; s = 0 to no rows."""
    graph = _matmul_graph()
    exe = compile_graph(graph, CompileOptions())
    engine = ExecutionEngine(exe, A10)
    for s, k in ((0, 4), (4, 0), (0, 0)):
        inputs = {"x": np.ones((s, k), np.float32),
                  "w": np.ones((k, 3), np.float32)}
        (reference,) = evaluate(graph, inputs)
        (out,), _stats = engine.run(inputs)
        assert reference.shape == (s, 3)
        assert np.array_equal(np.asarray(out), reference)


def test_zero_size_differential_all_executors():
    oracle = DifferentialOracle()
    result = oracle.check_case(_elementwise_graph(), {"s": 0, "t": 2},
                               input_seed=0)
    assert result.ok, [str(f) for f in result.failures]


# -- schedule selection at the edges ----------------------------------------


def test_elementwise_selector_handles_degenerate_extents():
    # zero elements: nothing to vectorise, flat must come back
    assert select_elementwise(0, 0).name == "flat"
    assert select_elementwise(1, 1).name == "flat"
    # dim-1 innermost blocks float4
    assert select_elementwise(1024, 1).name == "flat"
    assert select_elementwise(1024, 4).name == "vectorized4"


def test_reduction_selector_handles_degenerate_extents():
    for rows, cols in ((0, 0), (0, 128), (128, 0), (1, 1)):
        schedule = select_reduction(rows, cols)
        assert schedule.name in ("row_per_warp", "row_per_block",
                                 "two_pass")
        eff, parallel = schedule.reduction_profile(rows, cols)
        assert 0 < eff <= 1
        assert parallel >= 0


def test_launch_dims_and_cost_stay_finite_for_zero_shapes():
    """The runtime cost pipeline (select_schedule -> cost_spec ->
    kernel_time_us) must survive zero-element launches."""
    from repro.device.cost import kernel_time_us

    graph = _reduce_graph()
    exe = compile_graph(graph, CompileOptions())
    dims = {"s": 0, "t": 0}
    for kernel in exe.kernels:
        schedule = kernel.select_schedule(dims)
        spec = kernel.cost_spec(dims, schedule)
        t = kernel_time_us(spec, A10)
        assert np.isfinite(t) and t > 0
