"""Shape sampler: consistency of adversarial bindings."""

import random

import numpy as np

from repro.fuzz import generate_graph
from repro.fuzz.oracle import make_inputs
from repro.fuzz.sampler import (EDGE_VALUES, binding_suite, free_symbols,
                                sample_bindings)
from repro.ir.shapes import SymDim


def test_free_symbols_come_from_params():
    graph = generate_graph(0)
    names = set(free_symbols(graph))
    from_params = {d.name for p in graph.params
                   for d in p.shape if isinstance(d, SymDim)}
    assert names == from_params


def test_suite_includes_collapse_and_prime():
    graph = generate_graph(1)
    suite = binding_suite(graph, limit=4, seed=0)
    primary = free_symbols(graph)
    assert any(all(b[n] == 1 for n in primary if n in b) for b in suite)
    assert len(suite) >= 2
    assert all(suite[i] != suite[j]
               for i in range(len(suite)) for j in range(i))


def test_sampled_values_are_edge_values_or_derived():
    graph = generate_graph(2)
    rng = random.Random(0)
    for _ in range(20):
        bindings = sample_bindings(graph, rng)
        for name in free_symbols(graph):
            assert name in bindings
            assert bindings[name] >= 1


def test_bindings_are_consistent_with_derived_symbols():
    """Weight params whose shapes mention merged-reshape dims must get
    the derived value, so input synthesis never contradicts the graph."""
    from repro.interp import evaluate

    for seed in range(25):
        graph = generate_graph(seed)
        for bindings in binding_suite(graph, limit=3, seed=seed):
            inputs = make_inputs(graph, bindings, seed)
            # evaluation only succeeds when all input shapes cohere
            outputs = evaluate(graph, inputs)
            assert len(outputs) == len(graph.outputs)


def test_sampling_is_deterministic():
    graph = generate_graph(3)
    a = binding_suite(graph, limit=4, seed=11)
    b = binding_suite(graph, limit=4, seed=11)
    assert a == b


def test_make_inputs_deterministic_and_bounded():
    graph = generate_graph(4)
    bindings = binding_suite(graph, limit=1, seed=0)[0]
    x = make_inputs(graph, bindings, seed=5)
    y = make_inputs(graph, bindings, seed=5)
    for name in x:
        assert np.array_equal(x[name], y[name])
        if np.issubdtype(x[name].dtype, np.floating):
            assert np.abs(x[name]).max(initial=0.0) <= 2.0


def test_edge_values_cover_the_classic_traps():
    assert 1 in EDGE_VALUES          # broadcast collapse
    assert 2 in EDGE_VALUES          # smallest vector width
    assert any(v > 64 for v in EDGE_VALUES)  # schedule regime change
    primes = {3, 5, 7, 13, 17, 31, 97}
    assert primes & set(EDGE_VALUES)
