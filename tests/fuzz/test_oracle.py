"""Differential oracle: comparisons, invariants, fault detection."""

import numpy as np
import pytest

from repro.baselines import baseline_names
from repro.core import CompileOptions, compile_graph
from repro.device import A10
from repro.fuzz import (CorruptedInterpreter, DifferentialOracle,
                        corrupt_kernel, generate_graph)
from repro.fuzz.oracle import DISC_EXECUTOR, compare_arrays, make_inputs
from repro.fuzz.sampler import binding_suite
from repro.interp import evaluate
from repro.ir import GraphBuilder, f32
from repro.runtime import ExecutionEngine

# -- compare_arrays ----------------------------------------------------------


def test_compare_accepts_tolerable_noise():
    a = np.linspace(-1, 1, 64, dtype=np.float32)
    b = a + 1e-7
    assert compare_arrays(a, b, "f32") is None


def test_compare_rejects_large_error():
    a = np.zeros(8, np.float32)
    b = a + 0.5
    assert compare_arrays(a, b, "f32") is not None


def test_compare_rejects_shape_and_dtype_drift():
    a = np.zeros((2, 3), np.float32)
    assert "shape" in compare_arrays(a, np.zeros((3, 2), np.float32),
                                     "f32")
    assert "dtype" in compare_arrays(a, np.zeros((2, 3), np.float64),
                                     "f32")


def test_compare_is_exact_for_ints_and_bools():
    a = np.arange(6, dtype=np.int32)
    assert compare_arrays(a, a.copy(), "i32") is None
    b = a.copy()
    b[3] += 1
    assert compare_arrays(a, b, "i32") is not None


def test_compare_matches_nonfinite_patterns():
    a = np.array([1.0, np.inf, np.nan], np.float32)
    assert compare_arrays(a, a.copy(), "f32") is None
    b = np.array([1.0, np.inf, 2.0], np.float32)
    assert compare_arrays(a, b, "f32") is not None
    c = np.array([1.0, -np.inf, np.nan], np.float32)
    assert compare_arrays(a, c, "f32") is not None


# -- clean cases -------------------------------------------------------------


@pytest.mark.parametrize("seed", range(6))
def test_oracle_passes_clean_generated_cases(seed):
    oracle = DifferentialOracle()
    graph = generate_graph(seed)
    bindings = binding_suite(graph, limit=1, seed=seed)[0]
    result = oracle.check_case(graph, bindings, input_seed=seed)
    assert result.ok, [str(f) for f in result.failures]
    assert DISC_EXECUTOR in result.executors_checked
    assert set(result.executors_checked) == \
        {DISC_EXECUTOR, *baseline_names()}


def test_oracle_covers_all_seven_baselines():
    assert len(baseline_names()) == 7
    oracle = DifferentialOracle()
    assert set(oracle.baselines) == set(baseline_names())


# -- fault detection ---------------------------------------------------------


def _simple_graph():
    b = GraphBuilder("g")
    s = b.sym("s", hint=8)
    x = b.parameter("x", (s, 4), f32)
    b.outputs(b.add(b.tanh(x), b.abs(x)))
    return b.graph


def test_oracle_flags_corrupted_kernel():
    graph = _simple_graph()
    inputs = make_inputs(graph, {"s": 5}, 0)
    reference = [np.asarray(v) for v in evaluate(graph, inputs)]
    executable = corrupt_kernel(compile_graph(graph, CompileOptions()),
                                kernel_index=0, delta=1.0)
    outputs, _ = ExecutionEngine(executable, A10).run(inputs)
    diffs = [compare_arrays(ref, np.asarray(out), node.dtype.name)
             for ref, out, node in zip(reference, outputs, graph.outputs)]
    assert any(d is not None for d in diffs)


@pytest.mark.parametrize("seed", range(4))
def test_oracle_flags_corrupted_kernel_on_generated_graphs(seed):
    graph = generate_graph(seed)
    bindings = binding_suite(graph, limit=1, seed=seed)[0]
    inputs = make_inputs(graph, bindings, seed)
    reference = [np.asarray(v) for v in evaluate(graph, inputs)]
    executable = compile_graph(graph, CompileOptions())
    corrupt_kernel(executable, kernel_index=0, delta=3.0)
    try:
        outputs, _ = ExecutionEngine(executable, A10).run(inputs)
    except Exception:
        return  # corruption broke a shape contract: also detected
    diffs = [compare_arrays(ref, np.asarray(out), node.dtype.name)
             for ref, out, node in zip(reference, outputs, graph.outputs)]
    assert any(d is not None for d in diffs)


def test_corrupted_interpreter_diverges_from_reference():
    graph = _simple_graph()
    inputs = make_inputs(graph, {"s": 3}, 1)
    reference = [np.asarray(v) for v in evaluate(graph, inputs)]
    corrupted = CorruptedInterpreter(graph, "tanh").run(inputs)
    diffs = [compare_arrays(ref, np.asarray(out), node.dtype.name)
             for ref, out, node in zip(reference, corrupted,
                                       graph.outputs)]
    assert any(d is not None for d in diffs)


def test_invariant_checks_run_when_enabled():
    oracle = DifferentialOracle(check_invariants=True)
    graph = _simple_graph()
    result = oracle.check_case(graph, {"s": 4}, input_seed=0)
    assert result.ok


def test_interpreter_exception_is_reported_not_raised():
    b = GraphBuilder("g")
    s = b.sym("s")
    x = b.parameter("x", (s,), f32)
    b.outputs(b.exp(x))
    graph = b.graph
    oracle = DifferentialOracle()
    # missing binding for another param symbol cannot happen here; instead
    # give an impossible static binding via a wrong-shaped input by binding
    # nothing (make_inputs needs 's') — simulate by empty bindings.
    result = oracle.check_case(graph, {}, input_seed=0)
    # either the input synthesis failed before the oracle (KeyError in
    # substitute) or the oracle recorded an interpreter failure; accept the
    # recorded-failure contract only:
    assert not result.ok
