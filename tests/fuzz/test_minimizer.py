"""Delta-debugging minimizer: shrinks, preserves the failure, terminates."""

import numpy as np
import pytest

from repro.fuzz import (CorruptedInterpreter, generate_graph, minimize)
from repro.fuzz.oracle import compare_arrays, make_inputs
from repro.fuzz.runner import full_bindings
from repro.fuzz.sampler import free_symbols
from repro.interp import evaluate
from repro.ir import GraphBuilder, f32, verify

_ELEMENTWISE = ("tanh", "exp", "abs", "add", "mul", "sub", "div",
                "maximum", "minimum", "sigmoid", "erf", "relu")


def _corruption_predicate(bad_op, bindings, input_seed):
    """Fails when mis-executing ``bad_op`` changes an output."""

    def still_fails(candidate):
        if not any(n.op == bad_op for n in candidate.nodes):
            return False
        inputs = make_inputs(candidate, bindings, input_seed)
        try:
            reference = [np.asarray(v)
                         for v in evaluate(candidate, inputs)]
        except Exception:  # noqa: BLE001 - candidate itself is broken
            return False
        try:
            corrupted = [np.asarray(v) for v in
                         CorruptedInterpreter(candidate, bad_op)
                         .run(inputs)]
        except Exception:  # noqa: BLE001 - corruption crashed: observable
            return True
        return any(
            compare_arrays(ref, got, out.dtype.name) is not None
            for ref, got, out in zip(reference, corrupted,
                                     candidate.outputs))

    return still_fails


def _first_elementwise(graph):
    for node in graph.nodes:
        if node.op in _ELEMENTWISE:
            return node.op
    return None


@pytest.mark.parametrize("seed", range(8))
def test_minimizer_shrinks_injected_fault_below_quarter(seed):
    graph = generate_graph(seed)
    bad_op = _first_elementwise(graph)
    if bad_op is None:
        pytest.skip("no elementwise op in this seed")
    bindings = full_bindings(
        graph, {name: 5 for name in free_symbols(graph)})
    predicate = _corruption_predicate(bad_op, bindings, seed)
    if not predicate(graph):
        pytest.skip("corruption not observable at the outputs")
    result = minimize(graph, predicate)
    verify(result.graph)
    assert predicate(result.graph), "minimized graph lost the failure"
    assert result.ratio <= 0.25, (
        f"{result.original_nodes} -> {result.minimized_nodes} nodes "
        f"(ratio {result.ratio:.2f})")
    assert any(n.op == bad_op for n in result.graph.nodes)


def test_minimizer_requires_failing_original():
    b = GraphBuilder("g")
    x = b.parameter("x", (4,), f32)
    b.outputs(b.exp(x))
    with pytest.raises(ValueError):
        minimize(b.graph, lambda g: False)


def test_minimizer_reaches_single_op_on_linear_chain():
    """On a chain where the predicate is 'contains tanh', everything but
    one tanh and one parameter must go away."""
    b = GraphBuilder("g")
    s = b.sym("s", hint=8)
    x = b.parameter("x", (s, 4), f32)
    v = x
    for _ in range(6):
        v = b.abs(b.tanh(b.exp(v)))
    b.outputs(v)

    def has_tanh(g):
        return any(n.op == "tanh" for n in g.nodes)

    result = minimize(b.graph, has_tanh)
    assert has_tanh(result.graph)
    assert result.minimized_nodes <= 2


def test_minimizer_never_mutates_the_input_graph():
    graph = generate_graph(1)
    from repro.ir import print_graph
    before = print_graph(graph)
    minimize(graph, lambda g: True)
    assert print_graph(graph) == before


def test_minimizer_is_deterministic():
    graph = generate_graph(2)

    def predicate(g):
        return any(n.op == "add" for n in g.nodes)

    if not predicate(graph):
        pytest.skip("seed has no add")
    from repro.ir import print_graph
    a = minimize(graph, predicate)
    b = minimize(graph, predicate)
    assert print_graph(a.graph) == print_graph(b.graph)
    assert a.steps == b.steps
