"""Run statistics and timelines."""

import pytest

from repro.device import RunStats, Timeline


def test_total_vs_steady():
    stats = RunStats(device_time_us=10, host_time_us=2,
                     compile_time_us=100)
    assert stats.total_time_us == 112
    assert stats.steady_time_us == 12


def test_merge_accumulates():
    a = RunStats(device_time_us=10, kernels_launched=3, bytes_read=100)
    b = RunStats(device_time_us=5, kernels_launched=2, bytes_written=50,
                 cache_hit=False)
    a.merge(b)
    assert a.device_time_us == 15
    assert a.kernels_launched == 5
    assert a.bytes_total == 150
    assert not a.cache_hit


def test_timeline_aggregation():
    t = Timeline()
    t.record(RunStats(device_time_us=10, compile_time_us=1000,
                      kernels_launched=4))
    t.record(RunStats(device_time_us=20, kernels_launched=6))
    assert t.calls == 2
    assert t.compile_events == 1
    assert t.kernels == 10
    assert t.mean_steady_us == pytest.approx(15)
    assert t.mean_total_us == pytest.approx((1010 + 20) / 2)


def test_percentiles():
    t = Timeline()
    for us in (1, 2, 3, 4, 100):
        t.record(RunStats(device_time_us=us))
    assert t.percentile_us(0) == 1
    assert t.percentile_us(50) <= 4
    assert t.percentile_us(99) == 100
    assert Timeline().percentile_us(50) == 0.0
