"""The analytic kernel cost model."""

import pytest

from repro.device import (A10, T4, KernelSpec, kernel_time_us,
                          library_efficiency, occupancy)


def spec(bytes_total=1 << 20, flops=0.0, parallel=1 << 20, eff=1.0,
         extra=0, exempt=False):
    return KernelSpec(name="k", bytes_read=bytes_total, bytes_written=0,
                      flops=flops, parallel_elements=parallel,
                      efficiency=eff, extra_launches=extra,
                      occupancy_exempt=exempt)


def test_time_positive_and_floor_is_launch():
    tiny = spec(bytes_total=4, parallel=1)
    t = kernel_time_us(tiny, A10)
    assert t >= A10.kernel_launch_us


def test_monotone_in_bytes():
    times = [kernel_time_us(spec(bytes_total=n), A10)
             for n in (1 << 16, 1 << 20, 1 << 24)]
    assert times[0] < times[1] < times[2]


def test_monotone_in_flops():
    times = [kernel_time_us(spec(flops=f, bytes_total=1), A10)
             for f in (1e6, 1e8, 1e10)]
    assert times[0] < times[1] < times[2]


def test_roofline_max_semantics():
    memory_bound = spec(bytes_total=1 << 26, flops=1.0)
    compute_bound = spec(bytes_total=4, flops=1e12)
    both = spec(bytes_total=1 << 26, flops=1e12)
    t = kernel_time_us(both, A10)
    assert t >= kernel_time_us(memory_bound, A10) - 1
    assert t >= kernel_time_us(compute_bound, A10) - 1


def test_occupancy_bounds_and_monotonicity():
    assert 0 < occupancy(0, A10) <= 1
    assert occupancy(1, A10) <= occupancy(1 << 10, A10) \
        <= occupancy(1 << 30, A10)
    assert occupancy(1 << 30, A10) == 1.0


def test_small_kernels_cannot_saturate():
    small = spec(bytes_total=1 << 20, parallel=256)
    big = spec(bytes_total=1 << 20, parallel=1 << 24)
    assert kernel_time_us(small, A10) > kernel_time_us(big, A10)


def test_occupancy_exempt_skips_penalty():
    penalised = spec(bytes_total=1 << 20, parallel=256)
    exempt = spec(bytes_total=1 << 20, parallel=256, exempt=True)
    assert kernel_time_us(exempt, A10) < kernel_time_us(penalised, A10)


def test_extra_launches_add_fixed_cost():
    single = spec()
    double = spec(extra=1)
    delta = kernel_time_us(double, A10) - kernel_time_us(single, A10)
    assert delta == pytest.approx(A10.kernel_launch_us
                                  + A10.kernel_fixed_us)


def test_t4_slower_than_a10():
    s = spec(bytes_total=1 << 24)
    assert kernel_time_us(s, T4) > kernel_time_us(s, A10)
    c = spec(flops=1e10, bytes_total=1)
    assert kernel_time_us(c, T4) > kernel_time_us(c, A10)


def test_efficiency_scales_time():
    fast = spec(eff=1.0)
    slow = spec(eff=0.5)
    t_fast = kernel_time_us(fast, A10) - A10.kernel_launch_us \
        - A10.kernel_fixed_us
    t_slow = kernel_time_us(slow, A10) - A10.kernel_launch_us \
        - A10.kernel_fixed_us
    assert t_slow == pytest.approx(2 * t_fast, rel=1e-6)


def test_library_efficiency_curve():
    assert library_efficiency(4096, 4096, 4096) == pytest.approx(0.85)
    assert library_efficiency(64, 64, 64) < 0.2
    assert library_efficiency(8, 8, 8) >= 0.85 * 0.05
    sizes = [(64, 64, 64), (256, 256, 256), (1024, 1024, 1024)]
    effs = [library_efficiency(*s) for s in sizes]
    assert effs[0] < effs[1] < effs[2] <= 0.85
