"""Simulated compilation cost model."""

import pytest

from repro.device.compilecost import COMPILE_GRADES, compile_cost_us


def test_scales_with_nodes():
    assert compile_cost_us(200, "jit") > compile_cost_us(100, "jit")


def test_grade_ordering():
    n = 500
    assert compile_cost_us(n, "session_init") < compile_cost_us(n, "jit")
    assert compile_cost_us(n, "jit") < compile_cost_us(n, "engine_build")
    assert compile_cost_us(n, "engine_build") < compile_cost_us(
        n, "autotune")


def test_unknown_grade():
    with pytest.raises(KeyError):
        compile_cost_us(10, "psychic")


def test_all_grades_defined():
    for grade in COMPILE_GRADES:
        assert compile_cost_us(100, grade) > 0
