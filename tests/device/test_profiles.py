"""Device profiles."""

import pytest

from repro.device import A10, DEVICES, T4, device_named


def test_registry():
    assert device_named("A10") is A10
    assert device_named("T4") is T4
    with pytest.raises(KeyError):
        device_named("H100")
    assert {"A10", "T4"} <= set(DEVICES)


def test_datasheet_ratios():
    # A10 ≈ 1.9x bandwidth and ≈ 3.9x fp32 compute of T4.
    assert A10.mem_bandwidth_gbps / T4.mem_bandwidth_gbps == \
        pytest.approx(1.875, rel=0.01)
    assert A10.peak_fp32_tflops / T4.peak_fp32_tflops == \
        pytest.approx(3.85, rel=0.02)


def test_unit_conversions():
    assert A10.bytes_per_us() == pytest.approx(600e3)
    assert A10.flops_per_us() == pytest.approx(31.2e6)


def test_saturation_scales_with_sms():
    assert A10.saturation_elements > T4.saturation_elements
