"""Algebraic simplification and constant folding."""

import numpy as np
import pytest

from repro.interp import evaluate
from repro.ir import GraphBuilder, f32, verify
from repro.passes import AlgebraicSimplify, ConstantFold, PassManager


def simplify(graph):
    return PassManager([AlgebraicSimplify()], verify_each=True).run(
        graph)[0]


def test_add_zero_removed():
    b = GraphBuilder("g")
    s = b.sym("s")
    x = b.parameter("x", (s, 4), f32)
    y = b.add(x, b.scalar(0.0))
    b.outputs(b.exp(y))
    result = simplify(b.graph)
    assert result.changed
    assert "add" not in [n.op for n in b.graph]


def test_mul_one_removed_both_sides():
    b = GraphBuilder("g")
    x = b.parameter("x", (4,), f32)
    y = b.mul(b.scalar(1.0), b.mul(x, b.scalar(1.0)))
    b.outputs(y)
    simplify(b.graph)
    assert "mul" not in [n.op for n in b.graph]
    assert b.graph.outputs[0] is x


def test_mul_by_two_kept():
    b = GraphBuilder("g")
    x = b.parameter("x", (4,), f32)
    b.outputs(b.mul(x, b.scalar(2.0)))
    result = simplify(b.graph)
    assert not result.changed


def test_double_neg():
    b = GraphBuilder("g")
    x = b.parameter("x", (4,), f32)
    b.outputs(b.neg(b.neg(x)))
    simplify(b.graph)
    assert b.graph.outputs[0] is x


def test_transpose_involution():
    b = GraphBuilder("g")
    x = b.parameter("x", (2, 3, 4), f32)
    t = b.transpose(b.transpose(x, (2, 0, 1)), (1, 2, 0))
    b.outputs(t)
    simplify(b.graph)
    assert b.graph.outputs[0] is x


def test_identity_transpose_removed():
    b = GraphBuilder("g")
    x = b.parameter("x", (2, 3), f32)
    b.outputs(b.transpose(x, (0, 1)))
    simplify(b.graph)
    assert b.graph.outputs[0] is x


def test_reshape_round_trip_removed():
    b = GraphBuilder("g")
    s = b.sym("s")
    x = b.parameter("x", (s, 4), f32)
    r = b.reshape(b.reshape(x, (b.sym("t"), 2)), (s, 4))
    b.outputs(r)
    simplify(b.graph)
    assert b.graph.outputs[0] is x


def test_dynamic_reshape_not_folded_without_proof():
    """A reshape between *different* symbolic shapes must survive — folding
    it would need shape values a dynamic compiler does not have."""
    b = GraphBuilder("g")
    s = b.sym("s")
    x = b.parameter("x", (s, 4), f32)
    r = b.reshape(x, (b.sym("t"), 2))
    b.outputs(r)
    result = simplify(b.graph)
    assert not result.changed
    assert b.graph.outputs[0] is r


def test_cast_to_same_dtype_removed():
    b = GraphBuilder("g")
    x = b.parameter("x", (4,), f32)
    b.outputs(b.cast(x, f32))
    simplify(b.graph)
    assert b.graph.outputs[0] is x


def test_numerics_preserved(rng):
    b = GraphBuilder("g")
    s = b.sym("s")
    x = b.parameter("x", (s, 8), f32)
    y = b.add(b.mul(x, b.scalar(1.0)), b.scalar(0.0))
    b.outputs(b.neg(b.neg(b.exp(y))))
    inputs = {"x": rng.normal(size=(3, 8)).astype(np.float32)}
    (before,) = evaluate(b.graph, inputs)
    simplify(b.graph)
    (after,) = evaluate(b.graph, inputs)
    assert np.allclose(before, after)


def fold(graph):
    return PassManager([ConstantFold()], verify_each=True).run(graph)[0]


def test_constant_fold_static_subtree():
    b = GraphBuilder("g")
    c = b.add(b.constant([1.0, 2.0], f32), b.constant([3.0, 4.0], f32))
    x = b.parameter("x", (2,), f32)
    b.outputs(b.add(x, c))
    result = fold(b.graph)
    assert result.changed
    folded = [n for n in b.graph if n.op == "constant"]
    values = [n.attrs["value"] for n in folded]
    assert any(np.allclose(v, [4.0, 6.0]) for v in values)


def test_constant_fold_skips_dynamic():
    b = GraphBuilder("g")
    s = b.sym("s")
    x = b.parameter("x", (s,), f32)
    b.outputs(b.exp(x))
    result = fold(b.graph)
    assert not result.changed


def test_constant_fold_respects_size_cap():
    b = GraphBuilder("g")
    big = b.constant(np.zeros((1 << 9, 1 << 9), dtype=np.float32))
    b.outputs(b.exp(big))  # 2^18 elements > cap
    result = fold(b.graph)
    assert not result.changed
