"""Common subexpression elimination."""

import numpy as np

from repro.interp import evaluate
from repro.ir import GraphBuilder, f32, verify
from repro.passes import CommonSubexpressionElimination, PassManager


def cse(graph):
    return PassManager([CommonSubexpressionElimination()],
                       verify_each=True).run(graph)[0]


def test_duplicate_expressions_merged():
    b = GraphBuilder("g")
    x = b.parameter("x", (4,), f32)
    a1 = b.exp(x)
    a2 = b.exp(x)
    b.outputs(b.add(a1, a2))
    result = cse(b.graph)
    assert result.details["removed"] == 1
    assert len(b.graph.by_op("exp")) == 1


def test_commutative_ops_normalised():
    b = GraphBuilder("g")
    x = b.parameter("x", (4,), f32)
    y = b.parameter("y", (4,), f32)
    s1 = b.add(x, y)
    s2 = b.add(y, x)
    b.outputs(b.mul(s1, s2))
    cse(b.graph)
    assert len(b.graph.by_op("add")) == 1


def test_noncommutative_order_matters():
    b = GraphBuilder("g")
    x = b.parameter("x", (4,), f32)
    y = b.parameter("y", (4,), f32)
    d1 = b.sub(x, y)
    d2 = b.sub(y, x)
    b.outputs(b.mul(d1, d2))
    result = cse(b.graph)
    assert len(b.graph.by_op("sub")) == 2


def test_attrs_distinguish():
    b = GraphBuilder("g")
    x = b.parameter("x", (4, 8), f32)
    r1 = b.reduce_sum(x, axes=0)
    r2 = b.reduce_sum(x, axes=1)
    b.outputs(b.concat([r1], axis=0), b.concat([r2], axis=0))
    cse(b.graph)
    assert len(b.graph.by_op("reduce")) == 2


def test_identical_constants_merged():
    b = GraphBuilder("g")
    x = b.parameter("x", (2,), f32)
    c1 = b.constant([5.0, 5.0], f32)
    c2 = b.constant([5.0, 5.0], f32)
    b.outputs(b.add(b.add(x, c1), c2))
    cse(b.graph)
    assert len(b.graph.by_op("constant")) == 1


def test_chained_duplicates_collapse():
    b = GraphBuilder("g")
    x = b.parameter("x", (4,), f32)
    chain1 = b.neg(b.exp(x))
    chain2 = b.neg(b.exp(x))
    b.outputs(b.add(chain1, chain2))
    result = cse(b.graph)
    assert result.details["removed"] == 2


def test_numerics_preserved(rng):
    b = GraphBuilder("g")
    x = b.parameter("x", (6,), f32)
    b.outputs(b.add(b.exp(x), b.exp(x)))
    inputs = {"x": rng.normal(size=(6,)).astype(np.float32)}
    (before,) = evaluate(b.graph, inputs)
    cse(b.graph)
    (after,) = evaluate(b.graph, inputs)
    assert np.allclose(before, after)
    verify(b.graph)
