"""Dead code elimination."""

from repro.ir import GraphBuilder, f32, verify
from repro.passes import DeadCodeElimination, PassManager


def test_unreachable_removed():
    b = GraphBuilder("g")
    x = b.parameter("x", (4,), f32)
    live = b.relu(x)
    b.exp(x)  # dead
    b.neg(live)  # dead
    b.outputs(live)
    result = PassManager([DeadCodeElimination()],
                         verify_each=True).run(b.graph)[0]
    assert result.details["removed"] == 2
    assert [n.op for n in b.graph] == ["parameter", "relu"]


def test_clean_graph_unchanged():
    b = GraphBuilder("g")
    x = b.parameter("x", (4,), f32)
    b.outputs(b.relu(x))
    result = PassManager([DeadCodeElimination()]).run(b.graph)[0]
    assert not result.changed
