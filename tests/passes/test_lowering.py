"""Composite lowering preserves semantics and removes composites."""

import numpy as np

from repro.interp import evaluate
from repro.ir import GraphBuilder, f32, verify
from repro.passes import LowerComposites, PassManager

from ..conftest import toy_mlp_graph, toy_mlp_inputs


def run_lowering(graph):
    (result,) = PassManager([LowerComposites()], verify_each=True).run(
        graph)
    return result


def test_removes_all_composites():
    b = toy_mlp_graph()
    result = run_lowering(b.graph)
    assert result.changed
    assert result.details["lowered"] == 3
    for node in b.graph.nodes:
        assert node.op not in ("softmax", "layer_norm", "gelu")
    verify(b.graph)


def test_numerics_preserved(rng):
    b = toy_mlp_graph()
    inputs = toy_mlp_inputs(rng)
    (before,) = evaluate(b.graph, inputs)
    run_lowering(b.graph)
    (after,) = evaluate(b.graph, inputs)
    assert np.allclose(before, after, atol=1e-5)


def test_softmax_lowering_structure(rng):
    b = GraphBuilder("g")
    s = b.sym("s")
    x = b.parameter("x", (s, 16), f32)
    b.outputs(b.softmax(x))
    run_lowering(b.graph)
    ops = [n.op for n in b.graph]
    assert ops.count("reduce") == 2  # max + sum
    assert "exp" in ops and "div" in ops and "sub" in ops


def test_layer_norm_lowering_structure():
    b = GraphBuilder("g")
    x = b.parameter("x", (4, 16), f32)
    g = b.parameter("g", (16,), f32)
    beta = b.parameter("bb", (16,), f32)
    b.outputs(b.layer_norm(x, g, beta))
    run_lowering(b.graph)
    ops = [n.op for n in b.graph]
    assert ops.count("reduce") == 2  # mean + var-mean
    assert "rsqrt" in ops


def test_gelu_uses_erf(rng):
    b = GraphBuilder("g")
    x = b.parameter("x", (4,), f32)
    b.outputs(b.gelu(x))
    run_lowering(b.graph)
    assert "erf" in [n.op for n in b.graph]
    xv = rng.normal(size=(4,)).astype(np.float32)
    (out,) = evaluate(b.graph, {"x": xv})
    from scipy import special
    expected = xv * 0.5 * (1 + special.erf(xv / np.sqrt(2)))
    assert np.allclose(out, expected, atol=1e-6)


def test_idempotent():
    b = toy_mlp_graph()
    run_lowering(b.graph)
    second = run_lowering(b.graph)
    assert not second.changed


def test_dynamic_axis_softmax(rng):
    b = GraphBuilder("g")
    s = b.sym("s")
    x = b.parameter("x", (4, s, 8), f32)
    b.outputs(b.softmax(x, axis=1))  # softmax over the symbolic axis
    run_lowering(b.graph)
    xv = rng.normal(size=(4, 5, 8)).astype(np.float32)
    (out,) = evaluate(b.graph, {"x": xv})
    assert np.allclose(out.sum(axis=1), 1.0, atol=1e-5)
