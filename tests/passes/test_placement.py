"""Shape-computation placement."""

import numpy as np

from repro.ir import GraphBuilder, f32, i64
from repro.passes import PassManager, PlaceShapeComputations, \
    is_host_placed


def place(graph):
    return PassManager([PlaceShapeComputations()],
                       verify_each=True).run(graph)[0]


def test_shape_ops_go_host():
    b = GraphBuilder("g")
    s = b.sym("s")
    x = b.parameter("x", (s, 4), f32)
    size = b.dim_size(x, 0)
    shape = b.shape_of(x)
    b.outputs(size, shape)
    place(b.graph)
    assert is_host_placed(size)
    assert is_host_placed(shape)


def test_scalar_chain_follows_host():
    b = GraphBuilder("g")
    s = b.sym("s")
    x = b.parameter("x", (s, 4), f32)
    length = b.dim_size(x, 0)
    doubled = b.mul(length, b.constant(np.asarray(2, dtype=np.int64)))
    as_float = b.cast(doubled, f32)
    b.outputs(as_float)
    place(b.graph)
    assert is_host_placed(doubled)
    assert is_host_placed(as_float)


def test_tensor_compute_stays_on_device():
    b = GraphBuilder("g")
    s = b.sym("s")
    x = b.parameter("x", (s, 4), f32)
    y = b.exp(x)
    b.outputs(y)
    result = place(b.graph)
    assert not is_host_placed(y)
    assert not result.changed


def test_device_consumer_of_host_value_not_host():
    b = GraphBuilder("g")
    s = b.sym("s")
    x = b.parameter("x", (s, 4), f32)
    length = b.cast(b.dim_size(x, 0), f32)
    big = b.mul(x, b.broadcast_to(length, x.shape))
    b.outputs(big)
    place(b.graph)
    assert is_host_placed(length)
    assert not is_host_placed(big)


def test_symbolic_shaped_node_never_host():
    b = GraphBuilder("g")
    s = b.sym("s")
    ids = b.parameter("ids", (s,), i64)
    doubled = b.mul(ids, ids)  # int elementwise but symbolic size
    b.outputs(doubled)
    place(b.graph)
    assert not is_host_placed(doubled)
