"""The ``python -m repro.lint`` CLI: exit codes and reporting."""

from pathlib import Path

from repro.ir import GraphBuilder, f32
from repro.ir.serde import save_graph
from repro.lint.__main__ import main

CORPUS_DIR = Path(__file__).resolve().parents[1] / "regressions" / "corpus"


def write_graph(tmp_path, name, mutate=None):
    b = GraphBuilder("g")
    x = b.parameter("x", (4, 8), f32)
    b.outputs(b.exp(b.relu(x)))
    if mutate is not None:
        mutate(b.graph)
    return str(save_graph(b.graph, tmp_path / name))


def test_clean_graph_exits_zero(tmp_path, capsys):
    path = write_graph(tmp_path, "clean.json")
    assert main([path]) == 0
    out = capsys.readouterr().out
    assert "OK" in out
    assert "0 failing" in out


def test_bad_graph_exits_nonzero_with_codes(tmp_path, capsys):
    path = write_graph(tmp_path, "bad.json",
                       mutate=lambda g: setattr(g.nodes[1], "shape", (4, 9)))
    assert main([path]) == 1
    out = capsys.readouterr().out
    assert "L006" in out
    assert "L101" in out  # collect-all: both analyzers report


def test_unreadable_file_is_l000(tmp_path, capsys):
    path = tmp_path / "junk.json"
    path.write_text("{not json")
    assert main([str(path)]) == 1
    assert "L000" in capsys.readouterr().out


def test_directory_target_and_corpus_are_clean(capsys):
    assert main([str(CORPUS_DIR), "--level", "strict"]) == 0
    out = capsys.readouterr().out
    assert "0 failing" in out


def test_strict_level_fails_on_warnings(tmp_path, capsys):
    def add_dead_node(graph):
        graph.add("neg", (graph.nodes[1],))  # never used: L007 warning

    path = write_graph(tmp_path, "warn.json", mutate=add_dead_node)
    assert main([path, "--no-pipeline"]) == 0          # default: warning ok
    capsys.readouterr()
    assert main([path, "--no-pipeline", "--level", "strict"]) == 1
    assert "L007" in capsys.readouterr().out


def test_codes_flag_prints_the_registry(capsys):
    assert main(["--codes"]) == 0
    out = capsys.readouterr().out
    for code in ("L001", "L101", "L201", "L301"):
        assert code in out


def test_no_targets_is_a_usage_error(capsys):
    assert main([]) == 2
