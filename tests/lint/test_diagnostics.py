"""The diagnostics engine: registry, sink semantics, level filtering."""

import pytest

from repro.lint import (CODE_REGISTRY, Diagnostic, DiagnosticSink,
                        LintLevel, Severity, code_info)


def test_registry_codes_are_well_formed():
    assert CODE_REGISTRY, "registry is empty"
    for code, info in CODE_REGISTRY.items():
        assert info.code == code
        assert code.startswith("L") and code[1:].isdigit()
        assert isinstance(info.severity, Severity)
        assert info.analyzer
        assert info.title


def test_registry_covers_every_analyzer():
    analyzers = {info.analyzer for info in CODE_REGISTRY.values()}
    assert {"graph", "symbolic", "fusion", "memory"} <= analyzers


def test_code_info_rejects_unknown_codes():
    with pytest.raises(KeyError, match="L999"):
        code_info("L999")
    with pytest.raises(KeyError):
        DiagnosticSink().emit("L999", "nope")


def test_sink_collects_all_not_just_first():
    sink = DiagnosticSink()
    sink.emit("L001", "first")
    sink.emit("L006", "second")
    sink.emit("L007", "third (warning)")
    assert len(sink) == 3
    assert sink.codes() == {"L001", "L006", "L007"}
    assert [d.code for d in sink.errors()] == ["L001", "L006"]
    assert [d.code for d in sink.warnings()] == ["L007"]
    assert [d.code for d in sink.by_code("L006")] == ["L006"]


def test_severity_comes_from_the_registry():
    sink = DiagnosticSink()
    assert sink.emit("L001", "x").severity is Severity.ERROR
    assert sink.emit("L007", "x").severity is Severity.WARNING


def test_level_filtering():
    sink = DiagnosticSink()
    sink.emit("L006", "an error")
    sink.emit("L007", "a warning")
    assert sink.failures(LintLevel.OFF) == []
    assert [d.code for d in sink.failures(LintLevel.DEFAULT)] == ["L006"]
    assert {d.code for d in sink.failures(LintLevel.STRICT)} \
        == {"L006", "L007"}
    assert sink.ok(LintLevel.OFF)
    assert not sink.ok(LintLevel.DEFAULT)

    warnings_only = DiagnosticSink()
    warnings_only.emit("L007", "a warning")
    assert warnings_only.ok(LintLevel.DEFAULT)
    assert not warnings_only.ok(LintLevel.STRICT)


def test_rendering_carries_code_location_blame_and_hint():
    diag = Diagnostic(code="L006", severity=Severity.ERROR,
                      message="stale shape", node="%3:relu", node_id=3,
                      pass_name="evil", fix_hint="re-run inference")
    text = str(diag)
    assert "L006" in text
    assert "error" in text
    assert "%3:relu" in text
    assert "introduced by pass 'evil'" in text
    assert "re-run inference" in text


def test_key_ignores_message_text():
    a = Diagnostic("L006", Severity.ERROR, "shape (4,)", node="%1:relu",
                   node_id=1)
    b = Diagnostic("L006", Severity.ERROR, "shape (8,)", node="%1:relu",
                   node_id=1)
    assert a.key() == b.key()


def test_extend_and_summary():
    a, b = DiagnosticSink(), DiagnosticSink()
    a.emit("L001", "x")
    b.emit("L007", "y")
    a.extend(b)
    summary = a.summary()
    assert summary["diagnostics"] == 2
    assert summary["errors"] == 1
    assert summary["warnings"] == 1
    assert summary["codes"] == ["L001", "L007"]
    assert "L001" in a.render() and "L007" in a.render()
