"""One seeded defect per L6xx code, plus clean-artifact guards.

Each analyzer must (a) fire on a hand-built unsound artifact with a
witness interval and constraint chain in the message, and (b) stay
silent on everything the real pipeline produces (the zoo guard lives in
``test_clean_models.py`` — interval checks run inside ``lint_graph`` /
``lint_executable`` there).
"""

import pytest

from repro.core.symbolic.intervals import derive_intervals
from repro.ir import GraphBuilder, f32
from repro.lint import (LintLevel, check_bucket_padding, check_buffer_plan,
                        check_intervals, check_memory_symbolic,
                        check_plan_coverage, lint_compiled, lint_graph)
from repro.runtime.memory import BufferPlan, Interval as LiveRange
from repro.serving.batching import ShapeBucketer


def seq_graph(bound=None):
    """One symbolic-seqlen graph: param (s, 8) through relu."""
    b = GraphBuilder("seq")
    s = b.sym("s", 16)
    x = b.parameter("x", (s, 8), f32)
    b.outputs(b.relu(x))
    return b.graph


# -- L601: empty interval ----------------------------------------------------

def test_l601_contradictory_assume_ranges():
    graph = seq_graph()
    sink = lint_graph(graph, assume_ranges={"s": (128, 64)})
    assert "L601" in sink.codes()
    diag = sink.by_code("L601")[0]
    assert "s" in diag.message and "assume_range" in diag.message


def test_l601_assume_vs_class_constant():
    from repro.core.symbolic import ConstraintStore
    from repro.ir.shapes import SymDim

    graph = seq_graph()
    store = ConstraintStore()
    store.assert_dims_equal(SymDim("s"), 4)   # the class pins s = 4
    store.assume_range("s", 9, 16)            # ... which excludes this
    imap = derive_intervals(graph, store=store)
    from repro.lint import DiagnosticSink
    sink = DiagnosticSink()
    check_intervals(graph, sink, imap=imap)
    assert "L601" in sink.codes()
    assert "class constant" in sink.by_code("L601")[0].message


def test_no_l601_on_satisfiable_ranges():
    graph = seq_graph()
    sink = lint_graph(graph, assume_ranges={"s": (1, 512)})
    assert "L601" not in sink.codes()


# -- L602: symbolic memory aliasing -----------------------------------------

def lr(node_id, shape, start, end):
    return LiveRange(node_id=node_id, shape=shape, dtype_size=4,
                     start=start, end=end)


def test_l602_overlap_with_positive_symbolic_sizes():
    graph = seq_graph()
    imap = derive_intervals(graph)
    ranges = [lr(1, ("s", 8), 0, 2), lr(2, ("s", 8), 1, 3)]
    plan = BufferPlan(ranges)
    assert ranges[0].slot != ranges[1].slot   # sanity: planner is sound
    ranges[1].slot = ranges[0].slot           # corrupt it
    sink = check_buffer_plan(plan, imap=imap)
    assert {"L301", "L602"} <= sink.codes()
    diag = sink.by_code("L602")[0]
    assert "every shape" in diag.message
    assert "default extent domain" in diag.message  # the witness chain


def test_l602_quantifier_weakens_with_possible_zero():
    graph = seq_graph()
    imap = derive_intervals(graph, assume_ranges={"s": (0, 8)})
    ranges = [lr(1, ("s", 8), 0, 2), lr(2, (4,), 1, 3)]
    plan = BufferPlan(ranges)
    ranges[1].slot = ranges[0].slot
    sink = check_memory_symbolic(plan, imap)
    assert sink.codes() == {"L602"}
    assert "some shape" in sink.by_code("L602")[0].message


def test_no_l602_when_one_occupant_is_provably_empty():
    graph = seq_graph()
    imap = derive_intervals(graph, assume_ranges={"s": (0, 0)})
    ranges = [lr(1, ("s", 8), 0, 2), lr(2, (4,), 1, 3)]
    plan = BufferPlan(ranges)
    ranges[1].slot = ranges[0].slot
    sink = check_buffer_plan(plan, imap=imap)
    assert "L301" in sink.codes()     # structurally still an overlap
    assert "L602" not in sink.codes()  # but no shape aliases live bytes


# -- L603: launch-plan signature coverage ------------------------------------

def two_unknown_reshape():
    """[s, 4] -> [u, v]: two fresh targets — inference-consistent, but
    no resolution plan can solve either from the signature."""
    b = GraphBuilder("underdetermined")
    s = b.sym("s", 8)
    x = b.parameter("x", (s, 4), f32)
    u, v = b.sym("u"), b.sym("v")
    b.outputs(b.reshape(x, (u, v)))
    return b.graph


def test_l603_underdetermined_reshape_targets():
    graph = two_unknown_reshape()
    imap = derive_intervals(graph)
    sink = check_plan_coverage(graph, imap)
    flagged = {d.message.split("symbol ")[1].split(" ")[0]
               for d in sink.by_code("L603")}
    assert flagged == {"u", "v"}


def test_l603_via_full_compile_lint():
    sink = lint_compiled(two_unknown_reshape())
    assert "L603" in sink.codes()


def test_no_l603_for_solvable_reshape():
    b = GraphBuilder("solvable")
    s = b.sym("s", 8)
    x = b.parameter("x", (s, 4), f32)
    u = b.sym("u")
    b.outputs(b.reshape(x, (u, 2)))   # u = 2s: single unknown, derivable
    imap = derive_intervals(b.graph)
    assert not check_plan_coverage(b.graph, imap)


# -- L604: bucket pad ceilings ----------------------------------------------

class TruncatingBucketer(ShapeBucketer):
    """A ceiling capped below the class's upper bound: pads by cutting."""

    def ceiling(self, value: int) -> int:
        return min(super().ceiling(value), 8)


class WastefulBucketer(ShapeBucketer):
    """Pads everything to one giant ceiling regardless of value."""

    def ceiling(self, value: int) -> int:
        return 4096


def test_l604_ceiling_below_member_upper_bound():
    graph = seq_graph()
    imap = derive_intervals(graph, assume_ranges={"s": (1, 12)})
    bucketer = TruncatingBucketer(graph, graph.params)
    sink = check_bucket_padding(bucketer, imap)
    assert sink.codes() == {"L604"}
    diag = sink.by_code("L604")[0]
    assert "truncate" in diag.message and "ceiling(" in diag.message


def test_l604_waste_provably_over_threshold():
    graph = seq_graph()
    imap = derive_intervals(graph, assume_ranges={"s": (1, 8)})
    sink = check_bucket_padding(WastefulBucketer(graph, graph.params), imap)
    assert sink.codes() == {"L604"}
    assert "provably" in sink.by_code("L604")[0].message


def test_stock_bucketer_is_sound_and_frugal():
    graph = seq_graph()
    for bounds in ((1, 12), (1, 8), (3, 4096), (None, None)):
        assume = {"s": bounds} if bounds[0] is not None else None
        imap = derive_intervals(graph, assume_ranges=assume)
        for policy in ("bucket", "exact"):
            bucketer = ShapeBucketer(graph, graph.params, policy)
            assert not check_bucket_padding(bucketer, imap), \
                f"stock {policy} bucketer flagged at bounds {bounds}"


# -- L605: possible zero/negative extents ------------------------------------

def conv_valid_graph():
    b = GraphBuilder("conv")
    h = b.sym("h", 32)
    x = b.parameter("x", (2, h, 16, 3), f32)
    w = b.parameter("w", (5, 3, 3, 8), f32)
    b.outputs(b.conv2d(x, w, strides=(1, 1), padding="valid"))
    return b.graph


def test_l605_conv_valid_possible_nonpositive_output():
    sink = lint_graph(conv_valid_graph())
    assert "L605" in sink.codes()
    diag = sink.by_code("L605")[0]
    assert "conv2d" in diag.message
    # warning severity: fails strict, passes default
    assert sink.ok(LintLevel.DEFAULT)
    assert not sink.ok(LintLevel.STRICT)


def test_l605_suppressed_by_proven_floor():
    sink = lint_graph(conv_valid_graph(), assume_ranges={"h": (8, 64)})
    assert "L605" not in sink.codes()


def test_l605_reshape_division_fallback():
    b = GraphBuilder("split")
    s = b.sym("s", 16)
    x = b.parameter("x", (s, 4), f32)
    b.outputs(b.reshape(x, (b.sym("u"), 8)))
    sink = lint_graph(b.graph)
    assert "L605" in sink.codes()


# -- robustness --------------------------------------------------------------

def test_interval_checks_survive_broken_graphs():
    """A structurally corrupt graph must not crash the interval pass or
    smear L6xx findings over defects other analyzers own."""
    b = GraphBuilder("broken")
    x = b.parameter("x", (4, 8), f32)
    y = b.relu(x)
    b.outputs(b.exp(y))
    b.graph.nodes.reverse()                      # L002 territory
    b.graph.nodes[0].attrs["new_shape"] = None   # garbage attr
    sink = lint_graph(b.graph)
    assert not {"L601", "L603", "L605"} & sink.codes()


def test_check_intervals_returns_reusable_map():
    graph = seq_graph()
    imap = check_intervals(graph)
    assert imap.interval_of(graph.params[0].shape[0]).lo == 1
