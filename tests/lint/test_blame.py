"""Per-pass blame: new findings are attributed to the pass that ran."""

from repro.ir import GraphBuilder, f32
from repro.lint import BlameRecorder, DiagnosticSink, lint_graph
from repro.passes.base import FunctionPass, PassManager


def make():
    b = GraphBuilder("g")
    x = b.parameter("x", (4, 8), f32)
    b.outputs(b.exp(b.relu(x)))
    return b.graph


def noop(graph):
    return {"changed": False}


def corrupt(graph):
    graph.nodes[1].shape = (4, 9)  # stale shape: L006 + L101 downstream
    return {"changed": True}


def run_with_blame(graph, passes):
    recorder = BlameRecorder()
    recorder.prime(graph)
    PassManager(passes, after_each=recorder.after_pass).run(graph)
    return recorder


def test_clean_pipeline_blames_nobody():
    recorder = run_with_blame(make(), [
        FunctionPass(noop, name="first"),
        FunctionPass(noop, name="second"),
    ])
    assert recorder.guilty_passes() == []
    assert recorder.blamed == []
    assert all(r.clean for r in recorder.records)


def test_corrupting_pass_is_named():
    recorder = run_with_blame(make(), [
        FunctionPass(noop, name="innocent_before"),
        FunctionPass(corrupt, name="evil_pass"),
        FunctionPass(noop, name="innocent_after"),
    ])
    assert recorder.guilty_passes() == ["evil_pass"]
    assert recorder.blamed
    assert all(d.pass_name == "evil_pass" for d in recorder.blamed)
    codes = {d.code for d in recorder.blamed}
    assert "L006" in codes


def test_preexisting_findings_belong_to_the_producer():
    graph = make()
    corrupt(graph)  # broken *before* any pass runs
    recorder = run_with_blame(graph, [FunctionPass(noop, name="innocent")])
    assert recorder.guilty_passes() == []


def test_annotate_stamps_blame_onto_a_later_lint_run():
    graph = make()
    recorder = run_with_blame(graph, [
        FunctionPass(corrupt, name="evil_pass"),
    ])
    sink = lint_graph(graph, DiagnosticSink())
    assert all(d.pass_name is None for d in sink)
    recorder.annotate(sink)
    blamed = [d for d in sink if d.pass_name == "evil_pass"]
    assert blamed, "annotate found no matching findings"
    assert any("evil_pass" in str(d) for d in blamed)


def test_blame_diff_keyed_on_identity_not_message():
    """A second run over the same broken graph introduces nothing new."""
    graph = make()
    recorder = BlameRecorder()
    recorder.prime(graph)
    manager = PassManager([FunctionPass(corrupt, name="evil_pass"),
                           FunctionPass(noop, name="later")],
                          after_each=recorder.after_pass)
    manager.run(graph)
    by_pass = {r.pass_name: r for r in recorder.records}
    assert not by_pass["evil_pass"].clean
    assert by_pass["later"].clean  # same findings, not re-blamed
