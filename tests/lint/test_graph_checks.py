"""One hand-built bad graph per structural diagnostic code (L001-L010)."""

from repro.ir import GraphBuilder, f32, f64, verify
from repro.lint import LintLevel, check_graph


def make():
    b = GraphBuilder("g")
    x = b.parameter("x", (4, 8), f32)
    y = b.relu(x)
    b.outputs(b.exp(y))
    return b


def codes_of(graph):
    return check_graph(graph).codes()


def test_clean_graph_has_no_findings():
    assert not check_graph(make().graph)


def test_l001_foreign_operand():
    b1, b2 = make(), make()
    b1.graph.nodes[2].inputs[0] = b2.graph.nodes[1]
    assert "L001" in codes_of(b1.graph)


def test_l002_topological_order_broken():
    b = make()
    b.graph.nodes.reverse()
    assert "L002" in codes_of(b.graph)


def test_l003_foreign_output():
    b1, b2 = make(), make()
    b1.graph.outputs = [b2.graph.nodes[-1]]
    assert "L003" in codes_of(b1.graph)


def test_l004_duplicate_parameter_name():
    b = make()
    other = b.parameter("y", (4, 8), f32)
    other.attrs["param_name"] = "x"
    assert "L004" in codes_of(b.graph)


def test_l005_arity_violation():
    b = make()
    relu = b.graph.nodes[1]
    relu.inputs.append(b.graph.nodes[0])  # relu is unary
    assert "L005" in codes_of(b.graph)


def test_l006_stale_shape():
    b = make()
    b.graph.nodes[1].shape = (99, 99)
    assert "L006" in codes_of(b.graph)


def test_l006_stale_dtype():
    b = make()
    b.graph.nodes[2].dtype = f64
    assert "L006" in codes_of(b.graph)


def test_l007_dead_value_is_a_warning():
    b = make()
    b.mul(b.graph.nodes[0], b.graph.nodes[0])  # never used, not an output
    sink = check_graph(b.graph)
    assert {d.code for d in sink} == {"L007"}
    assert sink.ok(LintLevel.DEFAULT)
    assert not sink.ok(LintLevel.STRICT)
    verify(b.graph)  # the fail-fast gate ignores warnings


def test_l008_parameter_declaration_mismatch():
    b = make()
    b.graph.nodes[0].dtype = f64  # attrs still declare f32
    assert "L008" in codes_of(b.graph)


def test_l009_unreachable_chain():
    b = make()
    dead_head = b.abs(b.graph.nodes[0])
    b.neg(dead_head)  # dead_head has a user, but no path to an output
    sink = check_graph(b.graph)
    by_code = {d.code: d for d in sink}
    assert "L009" in by_code  # dead_head: feeds only dead computation
    assert "L007" in by_code  # the neg: never used at all


def test_l010_duplicate_node_id():
    b = make()
    b.graph.nodes[2].id = b.graph.nodes[1].id
    assert "L010" in codes_of(b.graph)


def test_multi_defect_graph_reports_everything_at_once():
    """The point of the collect-all sink: no finding masks another."""
    b1, b2 = make(), make()
    graph = b1.graph
    graph.nodes[2].inputs[0] = b2.graph.nodes[1]   # L001
    graph.nodes[1].shape = (4, 9)                  # L006
    extra = b1.parameter("x2", (4, 8), f32)
    extra.attrs["param_name"] = "x"                # L004
    sink = check_graph(graph)
    assert {"L001", "L004", "L006"} <= sink.codes()
