"""Host-program analyzer: corrupted instruction streams per code (L401-L404)."""

from types import SimpleNamespace

from repro.core import compile_graph
from repro.lint import check_host_program

from ..conftest import toy_mlp_graph


def instr(in_slots, out_slots, release=()):
    return SimpleNamespace(kernel=SimpleNamespace(name="k"),
                           in_slots=tuple(in_slots),
                           out_slots=tuple(out_slots),
                           release=tuple(release))


def program(instructions, output_slots, num_slots, *,
            param_slots=((0, "x"),), slot_of=None):
    """A stub with exactly the attributes the analyzer reads."""
    if slot_of is None:
        slot_of = {i: i for i in range(num_slots)}
    return SimpleNamespace(
        num_slots=num_slots,
        slot_of=slot_of,
        param_slots=tuple(param_slots),
        env_template=[None] * num_slots,
        instructions=list(instructions),
        output_slots=tuple(output_slots),
    )


def test_none_program_is_fine():
    assert not check_host_program(None)


def test_fresh_lowering_audits_clean():
    exe = compile_graph(toy_mlp_graph().graph)
    assert not check_host_program(exe.host_program)


def test_l401_read_before_define():
    p = program([instr([2], [1])], output_slots=(1,), num_slots=3)
    assert check_host_program(p).codes() == {"L401"}


def test_l402_release_before_later_read():
    p = program([instr([0], [1], release=(0,)),
                 instr([0], [2])],
                output_slots=(2,), num_slots=3)
    assert check_host_program(p).codes() == {"L402"}


def test_redefinition_revives_a_released_slot():
    p = program([instr([0], [1], release=(0,)),
                 instr([1], [0], release=(1,)),
                 instr([0], [2])],
                output_slots=(2,), num_slots=3)
    assert not check_host_program(p)


def test_l403_output_slot_released():
    p = program([instr([0], [1], release=(1,))],
                output_slots=(1,), num_slots=2)
    assert "L403" in check_host_program(p).codes()


def test_l403_output_slot_never_defined():
    p = program([instr([0], [1])], output_slots=(2,), num_slots=3)
    assert "L403" in check_host_program(p).codes()


def test_l404_slot_table_not_dense():
    p = program([instr([0], [1])], output_slots=(1,), num_slots=2,
                slot_of={10: 0, 11: 0})  # two values share slot 0
    assert "L404" in check_host_program(p).codes()


def test_multi_defect_program_reports_everything():
    p = program([instr([5], [1], release=(0, 1)),
                 instr([0], [3])],
                output_slots=(1, 4), num_slots=5,
                slot_of={i: 0 for i in range(5)})
    codes = check_host_program(p).codes()
    assert {"L401", "L402", "L403", "L404"} <= codes
