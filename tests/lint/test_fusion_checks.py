"""Fusion auditor: hand-built bad plans per diagnostic code (L201-L207)."""

from repro.core.fusion import FusionConfig, FusionGroup, FusionKind, \
    FusionPlan
from repro.ir import GraphBuilder, f32
from repro.lint import LintLevel, check_fusion_plan


def loop_chain():
    """x -> relu -> exp, the minimal legal kLoop group."""
    b = GraphBuilder("g")
    x = b.parameter("x", (4, 3), f32)
    a = b.relu(x)
    c = b.exp(a)
    b.outputs(c)
    return b.graph, a, c


def plan_of(graph, *groups):
    return FusionPlan(graph, list(groups))


def test_clean_loop_group_audits_clean():
    graph, a, c = loop_chain()
    plan = plan_of(graph, FusionGroup(0, FusionKind.LOOP, [a, c]))
    assert not check_fusion_plan(plan)


def test_l201_dot_may_not_join_a_loop_kernel():
    b = GraphBuilder("g")
    x = b.parameter("x", (4, 3), f32)
    y = b.parameter("y", (3, 5), f32)
    d = b.dot(x, y)
    b.outputs(d)
    plan = plan_of(b.graph, FusionGroup(0, FusionKind.LOOP, [d]))
    assert "L201" in check_fusion_plan(plan).codes()


def test_l201_library_group_rejects_elementwise_member():
    graph, a, c = loop_chain()
    plan = plan_of(graph,
                   FusionGroup(0, FusionKind.LIBRARY, [a]),
                   FusionGroup(1, FusionKind.LOOP, [c]))
    assert "L201" in check_fusion_plan(plan).codes()


def test_l201_singleton_group_must_be_single():
    graph, a, c = loop_chain()
    plan = plan_of(graph, FusionGroup(0, FusionKind.SINGLETON, [a, c]))
    assert "L201" in check_fusion_plan(plan).codes()


def test_l202_loop_edge_with_unprovable_domains():
    graph, a, c = loop_chain()
    c.shape = (5,)  # 12 elements feeding a 5-element consumer
    plan = plan_of(graph, FusionGroup(0, FusionKind.LOOP, [a, c]))
    sink = check_fusion_plan(plan)
    assert "L202" in sink.codes()
    assert all(d.group == 0 for d in sink.by_code("L202"))


def test_l203_input_group_needs_exactly_one_reduction():
    b = GraphBuilder("g")
    x = b.parameter("x", (4, 8), f32)
    r1 = b.reduce_sum(x, axes=1)
    r2 = b.reduce_max(x, axes=1)
    e = b.relu(x)
    b.outputs(r1, r2, e)
    zero = plan_of(b.graph,
                   FusionGroup(0, FusionKind.INPUT, [e]),
                   FusionGroup(1, FusionKind.LOOP, [r1]),
                   FusionGroup(2, FusionKind.LOOP, [r2]))
    assert "L203" in check_fusion_plan(zero).codes()
    two = plan_of(b.graph,
                  FusionGroup(0, FusionKind.INPUT, [r1, r2]),
                  FusionGroup(1, FusionKind.LOOP, [e]))
    assert "L203" in check_fusion_plan(two).codes()


def test_l203_input_member_outside_the_root_domain():
    b = GraphBuilder("g")
    x = b.parameter("x", (4, 8), f32)
    y = b.parameter("y", (3, 3), f32)
    r = b.reduce_sum(x, axes=1)
    e = b.relu(y)  # 9 elements vs the root's 32-element input domain
    b.outputs(r, e)
    plan = plan_of(b.graph, FusionGroup(0, FusionKind.INPUT, [r, e]))
    sink = check_fusion_plan(plan)
    assert "L203" in sink.codes()


def test_l204_stitch_needs_two_last_axis_reductions():
    b = GraphBuilder("g")
    x = b.parameter("x", (4, 8), f32)
    r = b.reduce_max(x, axes=1)
    b.outputs(r)
    plan = plan_of(b.graph, FusionGroup(0, FusionKind.STITCH, [r]))
    assert "L204" in check_fusion_plan(plan).codes()


def test_l204_stitched_reduce_must_be_last_axis():
    b = GraphBuilder("g")
    x = b.parameter("x", (4, 8), f32)
    r1 = b.reduce_max(x, axes=1)
    r2 = b.reduce_sum(x, axes=1)
    r3 = b.reduce_sum(x, axes=0)  # wrong axis
    b.outputs(r1, r2, r3)
    plan = plan_of(b.graph,
                   FusionGroup(0, FusionKind.STITCH, [r1, r2, r3]))
    sink = check_fusion_plan(plan)
    assert "L204" in sink.codes()
    assert any(d.node for d in sink.by_code("L204"))


def test_l205_resource_bound_is_a_warning():
    graph, a, c = loop_chain()
    plan = plan_of(graph, FusionGroup(0, FusionKind.LOOP, [a, c]))
    config = FusionConfig(max_group_size=1)
    sink = check_fusion_plan(plan, config=config)
    assert sink.codes() == {"L205"}
    assert sink.ok(LintLevel.DEFAULT)
    assert not sink.ok(LintLevel.STRICT)


def test_l206_group_contracted_cycle():
    b = GraphBuilder("g")
    x = b.parameter("x", (4,), f32)
    n1 = b.relu(x)
    n2 = b.exp(n1)
    n3 = b.log(n2)
    b.outputs(n3)
    # g0 -> g1 (n1 feeds n2) and g1 -> g0 (n2 feeds n3): a 2-cycle.
    plan = plan_of(b.graph,
                   FusionGroup(0, FusionKind.LOOP, [n1, n3]),
                   FusionGroup(1, FusionKind.LOOP, [n2]))
    assert "L206" in check_fusion_plan(plan).codes()


def test_l207_uncovered_compute_nodes():
    graph, a, c = loop_chain()
    plan = FusionPlan(graph, [])
    sink = check_fusion_plan(plan)
    assert len(sink.by_code("L207")) == 2  # relu and exp; params exempt
