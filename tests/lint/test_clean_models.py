"""Property: every bundled model lints clean, before and after compiling.

This is the linter's false-positive guard.  The analyzers re-derive every
invariant at FULL strictness, so anything the real pipeline produces must
audit clean — a finding on a zoo model is a lint bug, not a model bug.
"""

import pytest

from repro.core.pipeline import CompileOptions, compile_graph
from repro.lint import LintLevel, lint_executable, lint_graph
from repro.models import MODEL_BUILDERS

MODELS = sorted(MODEL_BUILDERS)


@pytest.mark.parametrize("name", MODELS)
def test_model_graph_lints_clean(name):
    graph = MODEL_BUILDERS[name]().graph
    sink = lint_graph(graph)
    assert not sink, f"{name}: {sink.render()}"


@pytest.mark.parametrize("name", MODELS)
def test_compiled_model_emits_zero_diagnostics(name):
    graph = MODEL_BUILDERS[name]().graph
    options = CompileOptions(lint_level=LintLevel.DEFAULT)
    executable = compile_graph(graph, options)
    sink = executable.report.lint
    assert sink is not None, "lint_level=DEFAULT produced no report"
    assert sink.ok(LintLevel.DEFAULT), sink.render()
    # Stronger: the optimized artifacts are clean even of warnings.
    assert sink.ok(LintLevel.STRICT), sink.render()
    assert not any(d.pass_name for d in sink), "blame on a clean compile"


@pytest.mark.parametrize("name", MODELS[:2])
def test_lint_executable_matches_report(name):
    """The standalone deep lint agrees with the in-pipeline one."""
    graph = MODEL_BUILDERS[name]().graph
    options = CompileOptions(lint_level=LintLevel.DEFAULT)
    executable = compile_graph(graph, options)
    standalone = lint_executable(executable, config=options.fusion)
    assert not standalone, standalone.render()


def test_lint_off_keeps_reports_lint_free():
    graph = MODEL_BUILDERS[MODELS[0]]().graph
    executable = compile_graph(graph, CompileOptions())
    assert executable.report.lint is None
