"""Property: every bundled model lints clean, before and after compiling.

This is the linter's false-positive guard.  The analyzers re-derive every
invariant at FULL strictness, so anything the real pipeline produces must
audit clean — a finding on a zoo model is a lint bug, not a model bug.

One deliberate exception proves the rule: the interval analyzers (L6xx)
judge the *whole signature class*, and a model whose graph admits a
degenerate shape (s2t: ``frames < 4`` makes the subsampled length zero)
is genuinely hazardous until its declared deployment bounds
(``Model.axes``) are fed in as ``assume_range`` evidence.  The zoo is
therefore linted *with* each model's axes, and the s2t case pins both
sides of that contract.
"""

import pytest

from repro.core.pipeline import CompileOptions, compile_graph
from repro.lint import LintLevel, lint_executable, lint_graph
from repro.models import MODEL_BUILDERS

MODELS = sorted(MODEL_BUILDERS)


@pytest.mark.parametrize("name", MODELS)
def test_model_graph_lints_clean(name):
    model = MODEL_BUILDERS[name]()
    sink = lint_graph(model.graph, assume_ranges=model.axes)
    assert not sink, f"{name}: {sink.render()}"


@pytest.mark.parametrize("name", MODELS)
def test_compiled_model_emits_zero_diagnostics(name):
    model = MODEL_BUILDERS[name]()
    options = CompileOptions(lint_level=LintLevel.DEFAULT,
                             assume_ranges=model.axes)
    executable = compile_graph(model.graph, options)
    sink = executable.report.lint
    assert sink is not None, "lint_level=DEFAULT produced no report"
    assert sink.ok(LintLevel.DEFAULT), sink.render()
    # Stronger: the optimized artifacts are clean even of warnings.
    assert sink.ok(LintLevel.STRICT), sink.render()
    assert not any(d.pass_name for d in sink), "blame on a clean compile"


@pytest.mark.parametrize("name", MODELS[:2])
def test_lint_executable_matches_report(name):
    """The standalone deep lint agrees with the in-pipeline one."""
    model = MODEL_BUILDERS[name]()
    options = CompileOptions(lint_level=LintLevel.DEFAULT,
                             assume_ranges=model.axes)
    executable = compile_graph(model.graph, options)
    standalone = lint_executable(executable, config=options.fusion,
                                 assume_ranges=model.axes)
    assert not standalone, standalone.render()


def test_lint_off_keeps_reports_lint_free():
    graph = MODEL_BUILDERS[MODELS[0]]().graph
    executable = compile_graph(graph, CompileOptions())
    assert executable.report.lint is None


def test_s2t_zero_extent_hazard_is_real_and_retired_by_axes():
    """Without evidence, s2t's subsampling reshape admits ``frames < 4``
    — a zero ``sub_len`` — and the interval analyzer must say so; the
    model's declared frame range is exactly the proof that retires it.
    This is the intended division of labour: the class describes what
    *can* happen, the axes describe what deployment *allows*."""
    model = MODEL_BUILDERS["s2t"]()
    bare = lint_graph(model.graph)
    assert "L605" in bare.codes(), "the latent s2t hazard disappeared"
    assert any("sub_len" in d.message for d in bare.by_code("L605"))
    assert bare.ok(LintLevel.DEFAULT)      # warning, not error
    bounded = lint_graph(model.graph, assume_ranges=model.axes)
    assert not bounded, bounded.render()
