"""Memory-plan analyzer: corrupted BufferPlans per code (L301-L303)."""

from repro.lint import check_buffer_plan
from repro.runtime.memory import BufferPlan, Interval


def iv(node_id, start, end):
    return Interval(node_id=node_id, shape=(4,), dtype_size=4,
                    start=start, end=end)


def test_none_plan_is_fine():
    assert not check_buffer_plan(None)


def test_fresh_plan_audits_clean():
    plan = BufferPlan([iv(1, 0, 2), iv(2, 1, 3), iv(3, 3, 4)])
    assert not check_buffer_plan(plan)


def test_l301_overlapping_ranges_share_a_slot():
    intervals = [iv(1, 0, 2), iv(2, 1, 3)]
    plan = BufferPlan(intervals)
    assert intervals[0].slot != intervals[1].slot  # sanity: planner is fine
    intervals[1].slot = intervals[0].slot          # corrupt it
    sink = check_buffer_plan(plan)
    assert sink.codes() == {"L301"}


def test_l302_negative_range():
    plan = BufferPlan([iv(1, 0, 1)])
    plan.intervals[0].start, plan.intervals[0].end = 3, 1
    assert "L302" in check_buffer_plan(plan).codes()


def test_l302_slot_out_of_bounds():
    plan = BufferPlan([iv(1, 0, 1)])
    plan.intervals[0].slot = plan.num_slots  # beyond the slot count
    assert "L302" in check_buffer_plan(plan).codes()
    plan.intervals[0].slot = -1              # never assigned
    assert "L302" in check_buffer_plan(plan).codes()


def test_l303_double_planned_node():
    plan = BufferPlan([iv(7, 0, 1), iv(8, 2, 3)])
    plan.intervals[1].node_id = 7
    assert "L303" in check_buffer_plan(plan).codes()


def test_multi_defect_plan_reports_everything():
    intervals = [iv(1, 0, 2), iv(2, 1, 3), iv(3, 5, 4)]
    plan = BufferPlan(intervals)
    intervals[1].slot = intervals[0].slot  # L301
    intervals[1].node_id = 1               # L303
    sink = check_buffer_plan(plan)         # interval 3 is L302 (5..4)
    assert {"L301", "L302", "L303"} <= sink.codes()
