"""Symbolic analyzer: contradictions, dangling symbols, lost hints."""

from repro.ir import GraphBuilder, SymDim, f32
from repro.lint import LintLevel, check_symbols, lint_graph


def make_symbolic():
    b = GraphBuilder("g")
    n = b.sym("n", hint=64)
    x = b.parameter("x", (n, 8), f32)
    b.outputs(b.exp(b.relu(x)))
    return b


def test_clean_graph_has_no_findings():
    assert not check_symbols(make_symbolic().graph)


def test_l101_contradictory_constants():
    b = make_symbolic()
    # The relu output claims (n, 9) while its input is (n, 8): collecting
    # the elementwise equality fact unifies the constants 8 and 9.
    b.graph.nodes[1].shape = (b.sym("n"), 9)
    sink = check_symbols(b.graph)
    assert "L101" in sink.codes()
    assert any(d.node for d in sink.by_code("L101"))  # anchored to a node


def test_l101_does_not_mask_later_contradictions():
    b = GraphBuilder("g")
    x = b.parameter("x", (4,), f32)
    y = b.parameter("y", (6,), f32)
    r1, r2 = b.relu(x), b.relu(y)
    b.outputs(r1, r2)
    b.graph.nodes[2].shape = (5,)  # r1: 4 == 5
    b.graph.nodes[3].shape = (7,)  # r2: 6 == 7, independent contradiction
    sink = check_symbols(b.graph)
    assert len(sink.by_code("L101")) == 2


def test_l102_dangling_symbol():
    b = make_symbolic()
    b.graph.nodes[1].shape = (SymDim("ghost"), 8)
    sink = check_symbols(b.graph)
    assert "L102" in sink.codes()


def test_l103_non_interned_symbol_hint_lost():
    b = make_symbolic()
    # Same name the table knows, different instance, hint dropped — the
    # frozen dataclass compares equal by name so only identity catches it.
    rogue = SymDim("n")
    b.graph.nodes[0].shape = (rogue, 8)
    b.graph.nodes[0].attrs["shape"] = (rogue, 8)
    b.graph.nodes[1].shape = (rogue, 8)
    b.graph.nodes[2].shape = (rogue, 8)
    sink = check_symbols(b.graph)
    assert "L103" in sink.codes()
    assert sink.ok(LintLevel.DEFAULT)       # warning only
    assert not sink.ok(LintLevel.STRICT)


def test_lint_graph_combines_structural_and_symbolic():
    b = make_symbolic()
    b.graph.nodes[1].shape = (b.sym("n"), 9)
    sink = lint_graph(b.graph)
    # One mutation, two independent analyzers: the stale shape trips the
    # re-inference check and the constraint re-derivation.
    assert {"L006", "L101"} <= sink.codes()
