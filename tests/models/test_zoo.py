"""Every zoo model builds, verifies, and runs at multiple dynamic shapes."""

import numpy as np
import pytest

from repro.interp import evaluate
from repro.ir import verify
from repro.models import MODEL_BUILDERS, build_model, zoo

#: small sizes so the whole matrix stays fast
SMALL = {
    "bert": {"layers": 1, "hidden": 64, "heads": 2, "vocab": 128},
    "albert": {"layers": 2, "hidden": 64, "heads": 2, "vocab": 128},
    "gpt2": {"layers": 1, "hidden": 64, "heads": 2, "vocab": 128},
    "t5": {"layers": 1, "hidden": 64, "heads": 2, "vocab": 128},
    "s2t": {"layers": 1, "hidden": 64, "heads": 2, "vocab": 64},
    "crnn": {"channels": 16, "charset": 32},
    "fastspeech2": {"layers": 1, "hidden": 64, "heads": 2},
    "dien": {"items": 256, "embed_dim": 16},
}


def small(name):
    return build_model(name, **SMALL[name])


@pytest.mark.parametrize("name", sorted(MODEL_BUILDERS))
def test_builds_and_verifies(name):
    model = small(name)
    verify(model.graph)
    assert model.axes, "every model must declare dynamic axes"
    assert len(model.graph.params) >= 1
    assert model.graph.outputs


@pytest.mark.parametrize("name", sorted(MODEL_BUILDERS))
def test_runs_at_two_shapes(name, rng):
    model = small(name)
    for point in ("low", "high"):
        values = {}
        for axis, (lo, hi) in model.axes.items():
            values[axis] = lo if point == "low" else min(hi, lo * 2 + 8)
        inputs = model.make_inputs(rng, **values)
        outputs = evaluate(model.graph, inputs)
        assert all(np.isfinite(o).all() for o in outputs), \
            f"{name} produced non-finite values at {values}"


def test_bert_output_shape(rng):
    model = small("bert")
    inputs = model.make_inputs(rng, batch=3, seqlen=11)
    (logits,) = evaluate(model.graph, inputs)
    assert logits.shape == (3, 2)


def test_gpt2_causality(rng):
    """Changing a later token must not affect earlier positions' logits."""
    model = small("gpt2")
    inputs = model.make_inputs(rng, batch=1, seqlen=8)
    (logits_a,) = evaluate(model.graph, inputs)
    mutated = dict(inputs)
    ids = inputs["input_ids"].copy()
    ids[0, -1] = (ids[0, -1] + 1) % 128
    mutated["input_ids"] = ids
    (logits_b,) = evaluate(model.graph, mutated)
    assert np.allclose(logits_a[0, :-1], logits_b[0, :-1], atol=1e-4)
    assert not np.allclose(logits_a[0, -1], logits_b[0, -1], atol=1e-4)


def test_t5_two_independent_axes(rng):
    model = small("t5")
    inputs = model.make_inputs(rng, batch=2, src_len=9, tgt_len=5)
    (logits,) = evaluate(model.graph, inputs)
    assert logits.shape[:2] == (2, 5)


def test_s2t_frame_rounding(rng):
    model = small("s2t")
    inputs = model.make_inputs(rng, batch=1, frames=70)  # not /4
    assert inputs["features"].shape[1] % 4 == 0
    (probs,) = evaluate(model.graph, inputs)
    assert np.allclose(probs.sum(axis=-1), 1.0, atol=1e-4)


def test_crnn_width_scales_output(rng):
    model = small("crnn")
    (probs_a,) = evaluate(model.graph,
                          model.make_inputs(rng, batch=1, width=64))
    (probs_b,) = evaluate(model.graph,
                          model.make_inputs(rng, batch=1, width=128))
    assert probs_b.shape[1] == 2 * probs_a.shape[1]


def test_fastspeech2_two_outputs(rng):
    model = small("fastspeech2")
    inputs = model.make_inputs(rng, batch=1, phon_len=12, frames=40)
    mel, durations = evaluate(model.graph, inputs)
    assert mel.shape == (1, 40, 80)
    assert durations.shape == (1, 12, 1)
    assert (durations >= 0).all()  # relu'd


def test_dien_scores_are_probabilities(rng):
    model = small("dien")
    inputs = model.make_inputs(rng, batch=5, hist=13)
    (prob,) = evaluate(model.graph, inputs)
    assert prob.shape == (5, 1)
    assert ((prob >= 0) & (prob <= 1)).all()


def test_albert_shares_weights():
    model = small("albert")
    from repro.passes import CommonSubexpressionElimination, PassManager
    graph = model.graph.clone()
    before = len([n for n in graph if n.op == "constant"])
    PassManager([CommonSubexpressionElimination()]).run(graph)
    after = len([n for n in graph if n.op == "constant"])
    assert after < before  # layer weights deduplicate


def test_sample_inputs_defaults(rng):
    model = small("bert")
    inputs = model.sample_inputs(rng)
    lo, hi = model.axes["batch"]
    assert lo <= inputs["input_ids"].shape[0] <= hi


def test_zoo_builds_everything():
    models = zoo(SMALL)
    assert len(models) == len(MODEL_BUILDERS)
    assert {m.name for m in models} == set(MODEL_BUILDERS)


def test_unknown_model_rejected():
    with pytest.raises(KeyError):
        build_model("resnet9000")
