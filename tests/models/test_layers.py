"""Layer-builder helpers."""

import numpy as np
import pytest

from repro.interp import evaluate
from repro.ir import GraphBuilder, f32, i64, verify
from repro.models.layers import (Weights, conv_block, embedding,
                                 feed_forward, linear_layer, mlp,
                                 multi_head_attention,
                                 positional_embedding, transformer_layer)


@pytest.fixture
def b():
    return GraphBuilder("layers")


@pytest.fixture
def w(b):
    return Weights(b, np.random.default_rng(0))


def test_weights_deterministic():
    b1, b2 = GraphBuilder("a"), GraphBuilder("b")
    w1 = Weights(b1, np.random.default_rng(5))
    w2 = Weights(b2, np.random.default_rng(5))
    c1 = w1.dense(4, 4).attrs["value"]
    c2 = w2.dense(4, 4).attrs["value"]
    assert np.array_equal(c1, c2)


def test_linear_flattens_high_rank(b, w):
    batch, seq = b.sym("batch"), b.sym("seq")
    x = b.parameter("x", (batch, seq, 8), f32)
    y = linear_layer(b, w, x, 8, 4)
    assert y.shape == (batch, seq, 4)
    # the 2-D flatten/unflatten pair exists
    assert len(b.graph.by_op("reshape")) == 2
    dots = b.graph.by_op("dot")
    assert len(dots) == 1
    assert len(dots[0].inputs[0].shape) == 2


def test_linear_2d_no_flatten(b, w):
    n = b.sym("n")
    x = b.parameter("x", (n, 8), f32)
    linear_layer(b, w, x, 8, 4)
    assert not b.graph.by_op("reshape")


def test_linear_numerics(b, w, rng):
    n = b.sym("n")
    x = b.parameter("x", (n, 3, 8), f32)
    y = linear_layer(b, w, x, 8, 4, bias=False)
    b.outputs(y)
    xv = rng.normal(size=(2, 3, 8)).astype(np.float32)
    weight = b.graph.by_op("constant")[0].attrs["value"]
    (out,) = evaluate(b.graph, {"x": xv})
    assert np.allclose(out, xv @ weight, atol=1e-5)


def test_embedding_and_positions(b, w, rng):
    s = b.sym("s")
    table = w.dense(50, 8)
    ids = b.parameter("ids", (2, s), i64)
    emb = embedding(b, table, ids)
    assert emb.shape == (2, s, 8)
    pos_table = w.dense(64, 8)
    pos = positional_embedding(b, pos_table, s, emb)
    b.outputs(b.add(emb, pos))
    ids_v = rng.integers(0, 50, size=(2, 5)).astype(np.int64)
    (out,) = evaluate(b.graph, {"ids": ids_v})
    assert out.shape == (2, 5, 8)


def test_attention_shapes(b, w):
    batch, q_len, kv_len = b.sym("b"), b.sym("q"), b.sym("k")
    query = b.parameter("query", (batch, q_len, 16), f32)
    memory = b.parameter("memory", (batch, kv_len, 16), f32)
    out = multi_head_attention(b, w, query, memory, 16, 4, batch, q_len,
                               kv_len)
    assert out.shape == (batch, q_len, 16)
    verify(b.graph)


def test_attention_rejects_indivisible_heads(b, w):
    batch, s = b.sym("b"), b.sym("s")
    x = b.parameter("x", (batch, s, 16), f32)
    with pytest.raises(ValueError):
        multi_head_attention(b, w, x, x, 16, 3, batch, s, s)


def test_attention_probs_normalised(b, w, rng):
    batch, s = b.sym("b"), b.sym("s")
    x = b.parameter("x", (batch, s, 16), f32)
    out = multi_head_attention(b, w, x, x, 16, 2, batch, s, s)
    b.outputs(out)
    xv = rng.normal(size=(2, 6, 16)).astype(np.float32)
    (result,) = evaluate(b.graph, {"x": xv})
    assert np.isfinite(result).all()


def test_feed_forward_activations(b, w):
    n = b.sym("n")
    x = b.parameter("x", (n, 8), f32)
    feed_forward(b, w, x, 8, 32, activation="gelu")
    assert b.graph.by_op("gelu")
    feed_forward(b, w, x, 8, 32, activation="relu")
    assert b.graph.by_op("relu")
    with pytest.raises(ValueError):
        feed_forward(b, w, x, 8, 32, activation="swish")


def test_transformer_layer_shapes(b, w):
    batch, s = b.sym("b"), b.sym("s")
    x = b.parameter("x", (batch, s, 16), f32)
    out = transformer_layer(b, w, x, 16, 2, 64, batch, s)
    assert out.shape == (batch, s, 16)
    assert len(b.graph.by_op("layer_norm")) == 2
    verify(b.graph)


def test_transformer_layer_with_cross_attention(b, w):
    batch, s, m = b.sym("b"), b.sym("s"), b.sym("m")
    x = b.parameter("x", (batch, s, 16), f32)
    mem = b.parameter("mem", (batch, m, 16), f32)
    out = transformer_layer(b, w, x, 16, 2, 64, batch, s,
                            memory=mem, memory_len=m)
    assert out.shape == (batch, s, 16)
    assert len(b.graph.by_op("layer_norm")) == 3


def test_conv_block(b, w, rng):
    n, wd = b.sym("n"), b.sym("w")
    x = b.parameter("x", (n, 16, wd, 3), f32)
    y = conv_block(b, w, x, 3, 8, strides=(2, 2))
    b.outputs(y)
    xv = rng.normal(size=(1, 16, 20, 3)).astype(np.float32)
    (out,) = evaluate(b.graph, {"x": xv})
    assert out.shape == (1, 8, 10, 8)
    assert (out >= 0).all()  # relu'd


def test_mlp_layer_count(b, w):
    n = b.sym("n")
    x = b.parameter("x", (n, 8), f32)
    mlp(b, w, x, [8, 16, 4, 1])
    assert len(b.graph.by_op("dot")) == 3
    assert len(b.graph.by_op("relu")) == 2  # no activation after last


def test_mlp_rejects_unknown_activation(b, w):
    n = b.sym("n")
    x = b.parameter("x", (n, 8), f32)
    with pytest.raises(ValueError):
        mlp(b, w, x, [8, 4, 2], activation="softplus")
