"""The seven concrete baseline systems + the DISC executor wrapper."""

import numpy as np
import pytest

from repro.baselines import (ALL_BASELINES, DiscExecutor, baseline_names,
                             make_baseline)
from repro.device import A10
from repro.interp import evaluate

from ..conftest import toy_mlp_graph, toy_mlp_inputs


def test_names_match_paper():
    assert baseline_names() == ["PyTorch", "TorchScript", "TVM",
                                "ONNXRuntime", "XLA", "TorchInductor",
                                "TensorRT"]


def test_unknown_baseline_rejected():
    b = toy_mlp_graph()
    with pytest.raises(KeyError):
        make_baseline("Caffe", b.graph, A10)


@pytest.mark.parametrize("name", ["PyTorch", "TorchScript", "TVM",
                                  "ONNXRuntime", "XLA", "TorchInductor",
                                  "TensorRT"])
def test_each_baseline_matches_interpreter(name, rng):
    b = toy_mlp_graph()
    inputs = toy_mlp_inputs(rng, 2, 5)
    (expected,) = evaluate(b.graph, inputs)
    executor = make_baseline(name, b.graph, A10)
    (actual,), stats = executor.run(inputs)
    assert np.allclose(expected, actual, atol=1e-5), name
    assert stats.kernels_launched > 0


def test_pytorch_never_compiles(rng):
    b = toy_mlp_graph()
    executor = make_baseline("PyTorch", b.graph, A10)
    __, stats = executor.run(toy_mlp_inputs(rng, 2, 3))
    assert stats.compile_time_us == 0


def test_xla_recompiles_per_shape(rng):
    b = toy_mlp_graph()
    executor = make_baseline("XLA", b.graph, A10)
    __, s1 = executor.run(toy_mlp_inputs(rng, 2, 3))
    __, s2 = executor.run(toy_mlp_inputs(rng, 2, 4))
    __, s3 = executor.run(toy_mlp_inputs(rng, 2, 3))
    assert s1.compile_time_us > 0 and s2.compile_time_us > 0
    assert s3.compile_time_us == 0


def test_static_engines_pad(rng):
    b = toy_mlp_graph()
    for name in ("TVM", "TensorRT"):
        executor = make_baseline(name, b.graph, A10)
        __, stats = executor.run(toy_mlp_inputs(rng, 3, 5))
        assert stats.padding_waste_bytes > 0, name


def test_disc_compiles_once_and_serves_all_shapes(rng):
    b = toy_mlp_graph()
    disc = DiscExecutor(b.graph, A10)
    __, s1 = disc.run(toy_mlp_inputs(rng, 2, 3))
    __, s2 = disc.run(toy_mlp_inputs(rng, 7, 11))
    assert s1.compile_time_us > 0
    assert s2.compile_time_us == 0
    assert s2.cache_hit


def test_disc_beats_eager_on_dynamic_trace(rng):
    b = toy_mlp_graph()
    disc = DiscExecutor(b.graph, A10)
    eager = make_baseline("PyTorch", b.graph, A10)
    shapes = [(1, 4), (2, 9), (3, 6), (1, 16)]
    disc_total = eager_total = 0.0
    for batch, seq in shapes:
        inputs = toy_mlp_inputs(rng, batch, seq)
        __, sd = disc.run(inputs)
        __, se = eager.run(inputs)
        disc_total += sd.steady_time_us
        eager_total += se.steady_time_us
    assert disc_total < eager_total


def test_eager_launches_most_kernels(rng):
    b = toy_mlp_graph()
    inputs = toy_mlp_inputs(rng, 2, 5)
    counts = {}
    for name in baseline_names():
        __, stats = make_baseline(name, b.graph, A10).run(inputs)
        counts[name] = stats.kernels_launched
    __, disc_stats = DiscExecutor(b.graph, A10).run(inputs)
    # Eager never fuses, so no baseline that keeps composites beats it;
    # compiler stacks that *decompose* composites may launch more kernels
    # on tiny graphs, which is fine.  DISC launches the fewest of all.
    assert counts["PyTorch"] >= counts["ONNXRuntime"]
    assert counts["PyTorch"] >= counts["TensorRT"]
    assert disc_stats.kernels_launched <= min(counts.values())


def test_run_trace_timeline(rng):
    b = toy_mlp_graph()
    executor = make_baseline("ONNXRuntime", b.graph, A10)
    trace = [toy_mlp_inputs(rng, 1, 3), toy_mlp_inputs(rng, 2, 5)]
    timeline = executor.run_trace(trace)
    assert timeline.calls == 2
    assert timeline.compile_events == 1  # session init on first call


def test_specs_are_distinct():
    names = {spec.name for spec in ALL_BASELINES}
    assert len(names) == len(ALL_BASELINES) == 7
