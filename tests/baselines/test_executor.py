"""The simulated-baseline executor framework."""

import numpy as np
import pytest

from repro.baselines import BaselineSpec, SimulatedBaseline, pow2_bucket
from repro.core.fusion.kinds import FusionConfig
from repro.core.symbolic import ConstraintLevel
from repro.device import A10
from repro.interp import evaluate

from ..conftest import toy_mlp_graph, toy_mlp_inputs


def spec(**overrides):
    base = dict(
        name="test",
        lower_composites=True,
        constraint_level=ConstraintLevel.FULL,
        fusion=FusionConfig.loop_and_input(),
        base_efficiency=1.0,
        dispatch_us=1.0,
        eager_dispatch=False,
        compile_grade="jit",
        compile_policy="once",
    )
    base.update(overrides)
    return BaselineSpec(**base)


def test_pow2_bucket():
    assert pow2_bucket(1) == 1
    assert pow2_bucket(2) == 2
    assert pow2_bucket(3) == 4
    assert pow2_bucket(64) == 64
    assert pow2_bucket(65) == 128
    assert pow2_bucket(0) == 1


def test_numerics_match_interpreter(rng):
    b = toy_mlp_graph()
    executor = SimulatedBaseline(b.graph, A10, spec())
    inputs = toy_mlp_inputs(rng, 2, 5)
    (expected,) = evaluate(b.graph, inputs)
    (actual,), __ = executor.run(inputs)
    assert np.allclose(expected, actual, atol=1e-5)


def test_compile_once_policy(rng):
    b = toy_mlp_graph()
    executor = SimulatedBaseline(b.graph, A10, spec(compile_policy="once"))
    __, first = executor.run(toy_mlp_inputs(rng, 2, 3))
    __, second = executor.run(toy_mlp_inputs(rng, 4, 7))
    assert first.compile_time_us > 0 and not first.cache_hit
    assert second.compile_time_us == 0 and second.cache_hit


def test_per_signature_policy(rng):
    b = toy_mlp_graph()
    executor = SimulatedBaseline(b.graph, A10,
                                 spec(compile_policy="per_signature"))
    __, s1 = executor.run(toy_mlp_inputs(rng, 2, 3))
    __, s2 = executor.run(toy_mlp_inputs(rng, 2, 3))   # same shapes
    __, s3 = executor.run(toy_mlp_inputs(rng, 2, 4))   # new shapes
    assert s1.compile_time_us > 0
    assert s2.compile_time_us == 0
    assert s3.compile_time_us > 0


def test_per_bucket_policy_shares_within_bucket(rng):
    b = toy_mlp_graph()
    executor = SimulatedBaseline(b.graph, A10, spec(
        compile_policy="per_bucket", bucket=pow2_bucket))
    __, s1 = executor.run(toy_mlp_inputs(rng, 2, 5))   # buckets (2, 8)
    __, s2 = executor.run(toy_mlp_inputs(rng, 2, 7))   # same buckets
    __, s3 = executor.run(toy_mlp_inputs(rng, 2, 9))   # bucket (2, 16)
    assert s1.compile_time_us > 0
    assert s2.compile_time_us == 0
    assert s3.compile_time_us > 0


def test_padding_charged_not_executed(rng):
    b = toy_mlp_graph()
    padded = SimulatedBaseline(b.graph, A10, spec(
        compile_policy="per_bucket", bucket=pow2_bucket))
    exact = SimulatedBaseline(b.graph, A10, spec())
    inputs = toy_mlp_inputs(rng, 3, 5)  # pads to (4, 8)
    (out_p,), stats_p = padded.run(inputs)
    (out_e,), stats_e = exact.run(inputs)
    assert out_p.shape == (3, 5, 16)  # real shape computed
    assert np.allclose(out_p, out_e, atol=1e-6)
    assert stats_p.padding_waste_bytes > 0
    assert stats_p.bytes_total > stats_e.bytes_total
    assert stats_p.device_time_us > stats_e.device_time_us


def test_no_padding_on_exact_bucket(rng):
    b = toy_mlp_graph()
    padded = SimulatedBaseline(b.graph, A10, spec(
        compile_policy="per_bucket", bucket=pow2_bucket))
    __, stats = padded.run(toy_mlp_inputs(rng, 4, 8))
    assert stats.padding_waste_bytes == 0


def test_eager_dispatch_serialises(rng):
    b = toy_mlp_graph()
    slow_dispatch = SimulatedBaseline(b.graph, A10, spec(
        eager_dispatch=True, dispatch_us=1000.0, compile_policy="none",
        compile_grade=None))
    fast_dispatch = SimulatedBaseline(b.graph, A10, spec(
        eager_dispatch=True, dispatch_us=0.1, compile_policy="none",
        compile_grade=None))
    inputs = toy_mlp_inputs(rng, 2, 3)
    __, slow = slow_dispatch.run(inputs)
    __, fast = fast_dispatch.run(inputs)
    assert slow.device_time_us >= 1000.0 * slow.kernels_launched
    assert fast.device_time_us < slow.device_time_us


def test_guard_overhead_charged_per_call(rng):
    b = toy_mlp_graph()
    executor = SimulatedBaseline(b.graph, A10, spec(
        guard_overhead_us=123.0, compile_policy="none",
        compile_grade=None))
    __, stats = executor.run(toy_mlp_inputs(rng, 2, 3))
    assert stats.host_time_us >= 123.0


def test_fusion_config_controls_kernel_count(rng):
    b = toy_mlp_graph()
    none = SimulatedBaseline(b.graph, A10, spec(
        fusion=FusionConfig.none()))
    fused = SimulatedBaseline(b.graph, A10, spec())
    inputs = toy_mlp_inputs(rng, 2, 3)
    __, s_none = none.run(inputs)
    __, s_fused = fused.run(inputs)
    assert s_none.kernels_launched > s_fused.kernels_launched


def test_unknown_policy_rejected(rng):
    b = toy_mlp_graph()
    executor = SimulatedBaseline(b.graph, A10, spec(
        compile_policy="sometimes"))
    with pytest.raises(ValueError):
        executor.run(toy_mlp_inputs(rng, 2, 3))
