"""The public API surface: everything README/examples rely on exists."""

import importlib

import pytest

import repro


def test_version():
    assert repro.__version__


def test_top_level_exports():
    for name in repro.__all__:
        assert hasattr(repro, name), name


ESSENTIALS = [
    # the quickstart path
    "GraphBuilder", "f32", "i64", "compile_graph", "ExecutionEngine",
    "A10", "T4", "evaluate",
    # evaluation stack
    "DiscExecutor", "make_baseline", "baseline_names", "build_model",
    "zoo", "make_trace",
    # options
    "CompileOptions", "ConstraintLevel", "FusionConfig", "EngineOptions",
    # frontend
    "trace", "TracedTensor",
    # serving runtime
    "ServingEngine", "ServingOptions", "VirtualScheduler",
    # schedule autotuning
    "ScheduleTuner", "TuningOptions",
]


@pytest.mark.parametrize("name", ESSENTIALS)
def test_essential_symbols(name):
    assert hasattr(repro, name), f"public API lost {name}"


SUBPACKAGES = [
    "repro.ir", "repro.numerics", "repro.interp", "repro.core",
    "repro.core.symbolic", "repro.core.fusion", "repro.core.codegen",
    "repro.passes", "repro.device", "repro.runtime", "repro.baselines",
    "repro.models", "repro.workloads", "repro.bench", "repro.frontend",
    "repro.serving", "repro.fuzz", "repro.lint", "repro.tuning",
]


@pytest.mark.parametrize("module", SUBPACKAGES)
def test_subpackages_import_cleanly(module):
    importlib.import_module(module)


def test_every_public_symbol_has_a_docstring():
    import inspect
    missing = []
    for name in repro.__all__:
        obj = getattr(repro, name)
        if inspect.isclass(obj) or inspect.isfunction(obj):
            if not (obj.__doc__ or "").strip():
                missing.append(name)
    assert not missing, f"undocumented public symbols: {missing}"
