"""One flow through every public subsystem, chained end to end.

trace -> serialise -> reload -> compile -> buffer plan -> adaptive
serving -> queue simulation -> experiment table rendering.  If any public
seam breaks, this test names it.
"""

import numpy as np

from repro import A10, T4, compile_graph, evaluate, trace
from repro.bench import format_table, simulate_serving
from repro.device import CPU_X86
from repro.frontend import constant
from repro.ir import f32, load_graph, save_graph, verify
from repro.ir.dot import plan_to_dot
from repro.runtime import (AdaptiveEngine, ExecutionEngine,
                           SpecializationOptions)


def build_traced_graph():
    w = np.random.default_rng(0).normal(0, 0.1, (32, 16)).astype("f4")

    def model(x):
        h = (x @ constant(w)).gelu()
        return h.softmax(axis=-1)

    return trace(model, [("x", ("batch", 32), f32)])


def test_trace_serde_compile_serve(tmp_path, rng):
    graph = build_traced_graph()
    verify(graph)

    # serialise + reload
    path = save_graph(graph, tmp_path / "traced.json")
    reloaded = load_graph(path)
    verify(reloaded)

    # compile the reloaded graph
    executable = compile_graph(reloaded)
    assert executable.report.num_kernels >= 2
    assert executable.buffer_plan is not None
    dot = plan_to_dot(executable.plan)
    assert "digraph" in dot

    # serve adaptively across shapes, numerics vs interpreter
    engine = AdaptiveEngine(executable, A10,
                            SpecializationOptions(threshold=2))
    for batch in (1, 5, 5, 5):
        x = rng.normal(size=(batch, 32)).astype(np.float32)
        (got,), stats = engine.run({"x": x})
        (want,) = evaluate(graph, {"x": x})
        assert np.allclose(got, want, atol=1e-5)
    assert engine.specializations_built == 1

    # queueing simulation over the same engine
    inputs = [{"x": rng.normal(size=(2, 32)).astype(np.float32)}
              for _ in range(10)]
    result = simulate_serving(engine, inputs, arrival_rate_qps=100.0)
    assert result.p99_us >= result.p50_us > 0

    # and the table renderer consumes its summary
    table = format_table(list(result.summary()),
                         [list(result.summary().values())])
    assert "p99_us" in table


def test_devices_rank_consistently(rng):
    graph = build_traced_graph()
    executable = compile_graph(graph)

    def times_at(batch):
        x = rng.normal(size=(batch, 32)).astype(np.float32)
        measured = {}
        for device in (A10, T4, CPU_X86):
            __, stats = ExecutionEngine(executable, device).run({"x": x})
            measured[device.name] = stats.device_time_us
        return measured

    # Throughput regime: the GPUs' bandwidth/compute dominate.
    big = times_at(1 << 16)
    assert big["A10"] < big["T4"] < big["CPU-x86"]
    # Launch-bound regime: the CPU's cheap kernel calls win — the real
    # reason tiny-batch inference often stays on CPU.
    tiny = times_at(8)
    assert tiny["CPU-x86"] < tiny["A10"]
