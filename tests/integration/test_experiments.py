"""Experiment harness smoke runs + the paper's qualitative claims.

Each experiment runs at tiny scale; the assertions are the acceptance
criteria from DESIGN.md §4 — monotone ablations, flat DISC curves, padded
and recompiling baselines degrading with shape diversity.
"""

import pytest

from repro.bench import (e1_end_to_end, e3_fusion_ablation,
                         e4_shape_constraints, e5_codegen_strategies,
                         e6_compile_overhead, e7_shape_diversity,
                         e8_kernel_reduction, e9_schedule_selection,
                         e10_placement_overhead, format_end_to_end,
                         format_fusion_ablation)


def test_e1_disc_wins_on_average():
    result = e1_end_to_end("A10", models=["bert", "dien"], num_queries=6,
                           seed=2)
    for system, summary in result["summary"].items():
        assert summary["mean"] > 1.0, \
            f"BladeDISC should beat {system} on average"
    text = format_end_to_end(result)
    assert "BladeDISC" in text and "bert" in text


def test_e3_fusion_ablation_monotone():
    result = e3_fusion_ablation("A10", models=("bert",), num_queries=4)
    rows = result["rows"]
    kernels = [r["kernels_per_query"] for r in rows]
    latency = [r["mean_steady_us"] for r in rows]
    assert kernels == sorted(kernels, reverse=True)
    assert latency[0] > latency[-1]
    assert format_fusion_ablation(result)


def test_e4_constraints_help():
    result = e4_shape_constraints("A10", models=("bert",), num_queries=4)
    by_level = {r["level"]: r for r in result["rows"]}
    assert by_level["full"]["kernels"] <= by_level["none"]["kernels"]
    assert by_level["full"]["fused_ops"] >= by_level["none"]["fused_ops"]


def test_e5_compile_strategy_scaling():
    result = e5_codegen_strategies("A10", num_queries=8,
                                   shape_counts=(1, 4))
    rows = {(r["strategy"], r["distinct_shapes"]): r
            for r in result["rows"]}
    disc1 = rows[("combined (BladeDISC)", 1)]
    disc4 = rows[("combined (BladeDISC)", 4)]
    xla1 = rows[("recompile/shape (XLA-style)", 1)]
    xla4 = rows[("recompile/shape (XLA-style)", 4)]
    assert disc1["compile_events"] == disc4["compile_events"] == 1
    assert xla4["compile_events"] == 4 > xla1["compile_events"]
    assert xla4["compile_total_s"] > disc4["compile_total_s"]


def test_e6_compile_overhead_rows():
    result = e6_compile_overhead(models=["bert", "dien"])
    assert len(result["rows"]) == 2
    for row in result["rows"]:
        assert row["kernels"] > 0
        assert row["simulated_compile_s"] > 0
        assert row["analysis_ms"] >= 0


def test_e7_disc_flat_under_diversity():
    result = e7_shape_diversity("A10", num_queries=12,
                                shape_counts=(1, 4, 8),
                                systems=("BladeDISC", "XLA"))
    disc = result["series"]["BladeDISC"]
    xla = result["series"]["XLA"]
    # DISC's amortised cost must not grow with diversity (same compile
    # once); XLA's must grow (a JIT per distinct shape).
    assert max(disc) < 2.5 * min(disc)
    assert xla[-1] > 1.5 * xla[0] or xla[-1] > 2 * disc[-1]


def test_e8_kernel_reduction_positive():
    result = e8_kernel_reduction("A10", models=["bert", "s2t"])
    for row in result["rows"]:
        assert row["kernel_reduction"] > 1.5
        assert row["bytes_reduction"] > 1.0


def test_e9_selected_close_to_best():
    result = e9_schedule_selection("A10")
    for row in result["rows"]:
        assert row["selected"] <= 1.25 * row["best_fixed"], row


def test_e10_placement_saves_launches():
    result = e10_placement_overhead("A10", num_queries=4)
    enabled, disabled = result["placement_rows"]
    assert enabled["host_placement"] is True
    assert enabled["mean_steady_us"] < disabled["mean_steady_us"]
    assert enabled["kernels_per_query"] < disabled["kernels_per_query"]
