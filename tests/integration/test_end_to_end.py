"""Cross-executor integration: all 8 systems agree numerically on real
models, and one DISC compilation serves the whole dynamic-shape space."""

import numpy as np
import pytest

from repro.baselines import DiscExecutor, baseline_names, make_baseline
from repro.device import A10, T4
from repro.interp import evaluate
from repro.models import build_model

SMALL = {
    "bert": {"layers": 1, "hidden": 64, "heads": 2, "vocab": 128},
    "dien": {"items": 256, "embed_dim": 16},
    "crnn": {"channels": 16, "charset": 32},
}


@pytest.fixture(scope="module")
def models():
    return {name: build_model(name, **cfg) for name, cfg in SMALL.items()}


@pytest.mark.parametrize("model_name", sorted(SMALL))
def test_all_executors_numerically_identical(models, model_name, rng):
    model = models[model_name]
    inputs = model.sample_inputs(rng)
    (expected, *rest) = evaluate(model.graph, inputs)

    disc = DiscExecutor(model.graph, A10)
    (actual, *__), __stats = disc.run(inputs)
    assert np.allclose(expected, actual, atol=1e-4, rtol=1e-4)

    for name in baseline_names():
        executor = make_baseline(name, model.graph, A10)
        (out, *__), __stats = executor.run(inputs)
        assert np.allclose(expected, out, atol=1e-4, rtol=1e-4), \
            f"{name} diverges on {model_name}"


def test_disc_shape_generic_on_bert(models, rng):
    model = models["bert"]
    disc = DiscExecutor(model.graph, A10)
    for batch, seqlen in [(1, 8), (4, 19), (2, 64), (7, 8)]:
        inputs = model.make_inputs(rng, batch=batch, seqlen=seqlen)
        (expected,) = evaluate(model.graph, inputs)
        (actual,), stats = disc.run(inputs)
        assert actual.shape == (batch, 2)
        assert np.allclose(expected, actual, atol=1e-4, rtol=1e-4)
    # after the first call, never a compile again
    __, final = disc.run(model.make_inputs(rng, batch=3, seqlen=40))
    assert final.compile_time_us == 0


def test_speedup_structure_on_trace(models, rng):
    """The qualitative E1 claims at integration-test scale."""
    model = models["bert"]
    shapes = [(1, 9), (2, 17), (1, 30), (3, 12), (1, 52)]
    traces = [model.make_inputs(rng, batch=b, seqlen=s)
              for b, s in shapes]

    def steady(executor):
        return sum(executor.run(i)[1].steady_time_us for i in traces)

    disc_time = steady(DiscExecutor(model.graph, A10))
    for name in baseline_names():
        baseline_time = steady(make_baseline(name, model.graph, A10))
        assert baseline_time > disc_time, \
            f"BladeDISC should beat {name} on a dynamic trace"


def test_devices_preserve_ordering(models, rng):
    model = models["dien"]
    inputs = model.sample_inputs(rng)
    for device in (A10, T4):
        disc = DiscExecutor(model.graph, device)
        eager = make_baseline("PyTorch", model.graph, device)
        __, sd = disc.run(inputs)
        __, se = eager.run(inputs)
        assert se.steady_time_us > sd.steady_time_us


def test_conv_model_through_disc(models, rng):
    model = models["crnn"]
    disc = DiscExecutor(model.graph, A10)
    for width in (32, 64, 100):
        inputs = model.make_inputs(rng, batch=2, width=width)
        (expected,) = evaluate(model.graph, inputs)
        (actual,), __ = disc.run(inputs)
        assert np.allclose(expected, actual, atol=1e-3, rtol=1e-3)
