"""Every example script runs end-to-end as a subprocess."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parents[2] / "examples"


def run_example(name: str, *args: str) -> str:
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / name), *args],
        capture_output=True, text=True, timeout=420)
    assert result.returncode == 0, result.stderr[-2000:]
    return result.stdout


def test_quickstart():
    out = run_example("quickstart.py")
    assert "zero recompilation" in out
    assert "numerics OK" in out
    assert "WRONG" not in out


def test_custom_model_compile():
    out = run_example("custom_model_compile.py")
    assert "match=True" in out
    assert "kStitch" in out


def test_traced_frontend():
    out = run_example("traced_frontend.py")
    assert "numerics OK" in out
    assert "WRONG" not in out


@pytest.mark.slow
def test_bert_serving_small():
    out = run_example("bert_serving.py", "--queries", "4")
    assert "BladeDISC" in out
    assert "speedup" in out


@pytest.mark.slow
def test_autoregressive_decode_small():
    out = run_example("autoregressive_decode.py", "--steps", "6")
    assert "compiled exactly once" in out
    assert out.count("True") >= 3  # all systems decode identical tokens
