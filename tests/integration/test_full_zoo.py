"""Full-zoo integration: every model through the whole pipeline."""

import numpy as np
import pytest

from repro.baselines import DiscExecutor, make_baseline
from repro.core import CompileOptions, ConstraintLevel, compile_graph
from repro.device import A10, CPU_X86
from repro.interp import evaluate
from repro.models import MODEL_BUILDERS, build_model

SMALL = {
    "bert": {"layers": 1, "hidden": 64, "heads": 2, "vocab": 128},
    "albert": {"layers": 2, "hidden": 64, "heads": 2, "vocab": 128},
    "gpt2": {"layers": 1, "hidden": 64, "heads": 2, "vocab": 128},
    "t5": {"layers": 1, "hidden": 64, "heads": 2, "vocab": 128},
    "s2t": {"layers": 1, "hidden": 64, "heads": 2, "vocab": 64},
    "crnn": {"channels": 16, "charset": 32},
    "fastspeech2": {"layers": 1, "hidden": 64, "heads": 2},
    "dien": {"items": 256, "embed_dim": 16},
}


@pytest.fixture(scope="module")
def zoo_models():
    return {name: build_model(name, **SMALL[name])
            for name in MODEL_BUILDERS}


@pytest.mark.parametrize("name", sorted(MODEL_BUILDERS))
def test_disc_compiles_and_matches_everywhere(zoo_models, name, rng):
    model = zoo_models[name]
    disc = DiscExecutor(model.graph, A10)
    for point in (0.0, 0.6, 1.0):
        values = {axis: int(lo + (hi - lo) * point)
                  for axis, (lo, hi) in model.axes.items()}
        inputs = model.make_inputs(rng, **values)
        expected = evaluate(model.graph, inputs)
        actual, stats = disc.run(inputs)
        for e, a in zip(expected, actual):
            assert np.allclose(e, a, atol=1e-3, rtol=1e-3), \
                f"{name} at {values}"
        assert stats.kernels_launched > 0


@pytest.mark.parametrize("name", sorted(MODEL_BUILDERS))
def test_disc_beats_eager_everywhere(zoo_models, name, rng):
    model = zoo_models[name]
    inputs = model.sample_inputs(rng)
    __, disc_stats = DiscExecutor(model.graph, A10).run(inputs)
    __, eager_stats = make_baseline("PyTorch", model.graph, A10).run(
        inputs)
    assert disc_stats.steady_time_us < eager_stats.steady_time_us, name
    assert disc_stats.kernels_launched < eager_stats.kernels_launched


@pytest.mark.parametrize("name", ["bert", "crnn", "dien"])
def test_constraint_ablation_compiles_all_levels(zoo_models, name, rng):
    model = zoo_models[name]
    inputs = model.sample_inputs(rng)
    expected = evaluate(model.graph, inputs)
    for level in ConstraintLevel:
        exe = compile_graph(model.graph,
                            CompileOptions(constraint_level=level))
        from repro.runtime import ExecutionEngine
        actual, __ = ExecutionEngine(exe, A10).run(inputs)
        for e, a in zip(expected, actual):
            assert np.allclose(e, a, atol=1e-3, rtol=1e-3), \
                f"{name}/{level}"


def test_cpu_device_serves_the_zoo(zoo_models, rng):
    for name in ("bert", "dien"):
        model = zoo_models[name]
        inputs = model.sample_inputs(rng)
        disc = DiscExecutor(model.graph, CPU_X86)
        actual, stats = disc.run(inputs)
        expected = evaluate(model.graph, inputs)
        for e, a in zip(expected, actual):
            assert np.allclose(e, a, atol=1e-3, rtol=1e-3)
        assert stats.device_time_us > 0


def test_buffer_plans_valid_across_zoo(zoo_models):
    for name, model in zoo_models.items():
        exe = compile_graph(model.graph)
        exe.buffer_plan.verify_no_overlap_sharing()
