"""Shared fixtures and graph factories for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.ir import GraphBuilder, f32


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(1234)


def toy_mlp_graph(name: str = "toy_mlp") -> GraphBuilder:
    """batch-dynamic MLP with reshape/gelu/layer-norm/softmax glue.

    Returns the *builder* so tests can reach symbols; the graph is
    ``builder.graph``.
    """
    b = GraphBuilder(name)
    batch = b.sym("batch", hint=8)
    seq = b.sym("seq", hint=16)
    x = b.parameter("x", (batch, seq, 32), f32)
    w = b.parameter("w", (32, 16), f32)
    c = b.parameter("c", (16,), f32)
    g = b.parameter("g", (16,), f32)
    beta = b.parameter("beta", (16,), f32)
    flat = b.reshape(x, (b.sym("bs"), 32))
    h = b.gelu(b.linear(flat, w, c))
    h = b.reshape(h, (batch, seq, 16))
    y = b.softmax(b.layer_norm(h, g, beta), axis=-1)
    b.outputs(y)
    return b


def toy_mlp_inputs(rng: np.random.Generator, batch: int = 3,
                   seq: int = 5) -> dict:
    return {
        "x": rng.normal(size=(batch, seq, 32)).astype(np.float32),
        "w": (rng.normal(size=(32, 16)) * 0.2).astype(np.float32),
        "c": rng.normal(size=(16,)).astype(np.float32),
        "g": np.abs(rng.normal(size=(16,))).astype(np.float32) + 0.5,
        "beta": rng.normal(size=(16,)).astype(np.float32),
    }


def softmax_graph(rows_hint: int = 64, cols_hint: int = 32):
    b = GraphBuilder("softmax")
    rows = b.sym("rows", hint=rows_hint)
    cols = b.sym("cols", hint=cols_hint)
    x = b.parameter("x", (rows, cols), f32)
    b.outputs(b.softmax(x, axis=-1))
    return b
