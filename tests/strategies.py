"""Shared hypothesis strategies for the property and fuzz test suites.

One home for the generators the ``tests/properties`` files draw from, so
shapes, kernel specs, liveness intervals and random graphs are grown the
same way everywhere.  The heavyweight graph generator lives in
:mod:`repro.fuzz.generator` (it is shipped, not test-only); here it is
wrapped as a hypothesis strategy so property tests can draw from the same
distribution the fuzz campaigns explore.
"""

from hypothesis import strategies as st

from repro.device import KernelSpec
from repro.fuzz.generator import GeneratorConfig, generate_graph
from repro.ir import GraphBuilder, f32
from repro.runtime.memory import Interval

__all__ = [
    "dims", "shapes", "symbol_keys", "union_ops",
    "kernel_specs", "intervals", "interval_sets",
    "random_graph", "fuzz_graphs", "batched_request_mixes",
]

# -- shapes ------------------------------------------------------------------

#: single dim extents, small enough that products stay tractable.
dims = st.integers(min_value=1, max_value=8)

#: concrete tensor shapes of rank 1..4.
shapes = st.lists(st.integers(min_value=1, max_value=6),
                  min_size=1, max_size=4).map(tuple)

# -- union-find --------------------------------------------------------------

#: symbol names for union-find law tests.
symbol_keys = st.sampled_from(list("abcdefgh"))

#: random union(a, b) sequences.
union_ops = st.lists(st.tuples(symbol_keys, symbol_keys),
                     min_size=0, max_size=30)

# -- device cost model -------------------------------------------------------

#: random kernel cost specs covering the whole input domain.
kernel_specs = st.builds(
    KernelSpec,
    name=st.just("k"),
    bytes_read=st.integers(0, 1 << 26),
    bytes_written=st.integers(0, 1 << 26),
    flops=st.floats(0, 1e11, allow_nan=False),
    parallel_elements=st.integers(1, 1 << 26),
    efficiency=st.floats(0.05, 1.2),
    extra_launches=st.integers(0, 2),
    occupancy_exempt=st.booleans(),
)

# -- buffer liveness ---------------------------------------------------------

#: one liveness interval with a static 1-D payload.
intervals = st.builds(
    lambda node_id, start, length, size: Interval(
        node_id=node_id, shape=(size,), dtype_size=4, start=start,
        end=start + length),
    node_id=st.integers(0, 1000),
    start=st.integers(0, 50),
    length=st.integers(0, 20),
    size=st.integers(1, 1024),
)

#: random interval sets for the buffer planner.
interval_sets = st.lists(intervals, min_size=0, max_size=40)

# -- random graphs -----------------------------------------------------------

_UNARY = ("exp", "neg", "tanh", "relu", "abs")
_BINARY = ("add", "sub", "mul", "maximum")


def random_graph(draw):
    """A small elementwise/reduce/reshape DAG over one symbolic dim.

    Used with ``st.data()``: ``graph = random_graph(data.draw)``.  The graph
    has one parameter ``x`` of shape ``(s, 8)`` and a single output, which
    keeps fusion/serde property tests fast; the fuzz campaigns cover the
    broader op mix via :func:`fuzz_graphs`.
    """
    b = GraphBuilder("random")
    s = b.sym("s", hint=8)
    x = b.parameter("x", (s, 8), f32)
    values = [x]
    steps = draw(st.integers(min_value=1, max_value=12))
    for _ in range(steps):
        choice = draw(st.integers(0, 9))
        operand = values[draw(st.integers(0, len(values) - 1))]
        if choice < 4:
            op = _UNARY[draw(st.integers(0, len(_UNARY) - 1))]
            values.append(getattr(b, op)(operand))
        elif choice < 7:
            other = values[draw(st.integers(0, len(values) - 1))]
            if operand.shape == other.shape:
                op = _BINARY[draw(st.integers(0, len(_BINARY) - 1))]
                values.append(getattr(b, op)(operand, other))
        elif choice < 8 and operand.shape == (s, 8):
            values.append(b.reshape(operand, (b.sym("t"), 4)))
        elif operand.rank >= 1:
            values.append(b.reduce_max(operand, axes=operand.rank - 1,
                                       keepdims=True))
    roots = [v for v in values[1:]] or [b.exp(x)]
    b.outputs(roots[-1])
    return b.graph


def fuzz_graphs(max_nodes: int = 14):
    """Graphs from the shipped fuzz generator, keyed by a drawn seed.

    Shrinking works on the seed, so hypothesis minimizes towards small
    seeds rather than structurally — for structural shrinking use the fuzz
    minimizer.
    """
    config = GeneratorConfig(max_nodes=max_nodes)
    return st.integers(min_value=0, max_value=2**20).map(
        lambda seed: generate_graph(seed, config))


# -- serving / batching ------------------------------------------------------

def batched_request_mixes(max_signatures: int = 3):
    """Request mixes for the dynamic-batching property suite.

    Each request is ``(signature_index, arrival_us, tight_deadline)``:
    which of the case's shape bindings it uses, which arrival wave it
    joins (simultaneous cold burst, a mid-flush straggler, or a warm
    late wave), and whether it carries a deadline shorter than the
    batcher's flush delay — the mix that exercises co-bucketing, lone
    flushes, explode-on-cold and in-bucket expiry together.
    """
    request = st.tuples(
        st.integers(min_value=0, max_value=max_signatures - 1),
        st.sampled_from([0.0, 700.0, 1e7]),
        st.booleans())
    return st.lists(request, min_size=2, max_size=8)
