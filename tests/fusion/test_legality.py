"""Fusion legality predicates."""

from repro.core.fusion import (is_last_axis_reduce, is_loop_fusible,
                               loop_edge_compatible, reduce_row_space,
                               stitch_member_role)
from repro.core.symbolic import ConstraintLevel, analyze_shapes
from repro.ir import GraphBuilder, f32


def build():
    b = GraphBuilder("g")
    batch, seq = b.sym("batch"), b.sym("seq")
    x = b.parameter("x", (batch, seq, 16), f32)
    return b, batch, seq, x


def test_loop_fusible_categories():
    b, batch, seq, x = build()
    e = b.exp(x)
    r = b.reshape(x, (b.sym("bs"), 16))
    red = b.reduce_sum(x, axes=2)
    d = b.dot(b.reshape(x, (b.sym("bs2"), 16)),
              b.parameter("w", (16, 4), f32))
    assert is_loop_fusible(e)
    assert is_loop_fusible(r)
    assert not is_loop_fusible(r, include_reshape=False)
    assert not is_loop_fusible(red)
    assert not is_loop_fusible(d)


def test_host_placed_not_fusible():
    b, batch, seq, x = build()
    e = b.exp(x)
    e.attrs["_placement"] = "host"
    assert not is_loop_fusible(e)


def test_loop_edge_same_shape():
    b, batch, seq, x = build()
    e1 = b.exp(x)
    e2 = b.neg(e1)
    b.outputs(e2)
    an = analyze_shapes(b.graph)
    assert loop_edge_compatible(e1, e2, an)


def test_loop_edge_across_reshape_needs_product_facts():
    b, batch, seq, x = build()
    e1 = b.exp(x)
    r = b.reshape(e1, (b.sym("bs"), 16))
    e2 = b.neg(r)
    b.outputs(e2)
    full = analyze_shapes(b.graph, ConstraintLevel.FULL)
    assert loop_edge_compatible(e1, r, full)
    assert loop_edge_compatible(r, e2, full)
    none = analyze_shapes(b.graph, ConstraintLevel.NONE)
    assert not loop_edge_compatible(e1, r, none)


def test_broadcast_consumer_always_absorbs():
    b, batch, seq, x = build()
    v = b.parameter("v", (16,), f32)
    scaled = b.mul(v, b.scalar(2.0))
    bc = b.broadcast_in_dim(scaled, (batch, seq, 16), (2,))
    b.outputs(b.add(x, bc))
    an = analyze_shapes(b.graph, ConstraintLevel.NONE)
    assert loop_edge_compatible(scaled, bc, an)


def test_last_axis_reduce_detection():
    b, batch, seq, x = build()
    last = b.reduce_max(x, axes=2, keepdims=True)
    middle = b.reduce_max(x, axes=1)
    assert is_last_axis_reduce(last)
    assert not is_last_axis_reduce(middle)
    assert not is_last_axis_reduce(b.exp(x))
    rows, reduced = reduce_row_space(last)
    assert rows == (batch, seq)
    assert reduced == 16


def test_stitch_roles():
    b, batch, seq, x = build()
    peak = b.reduce_max(x, axes=2, keepdims=True)
    shifted = b.sub(x, peak)
    exped = b.exp(shifted)
    total = b.reduce_sum(exped, axes=2, keepdims=True)
    out = b.div(exped, total)
    b.outputs(out)
    an = analyze_shapes(b.graph)
    rows, reduced = reduce_row_space(peak)
    assert stitch_member_role(total, rows, reduced, an) == "reduce"
    assert stitch_member_role(exped, rows, reduced, an) == "full"
    # the broadcast of the row scalar
    users = b.graph.users()
    bc = [u for u in users[peak]][0]
    assert stitch_member_role(bc, rows, reduced, an) in ("full", "row")


def test_stitch_rejects_foreign_row_space():
    b, batch, seq, x = build()
    y = b.parameter("y", (batch, 4, 16), f32)
    r1 = b.reduce_max(x, axes=2, keepdims=True)
    r2 = b.reduce_max(y, axes=2, keepdims=True)
    b.outputs(b.add(b.reduce_sum(r1, axes=(1, 2)),
                    b.reduce_sum(r2, axes=(1, 2))))
    an = analyze_shapes(b.graph)
    rows, reduced = reduce_row_space(r1)
    assert stitch_member_role(r2, rows, reduced, an) is None
