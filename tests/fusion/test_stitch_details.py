"""Deeper kStitch coverage: the fusion kind that is the paper's novelty."""

import numpy as np

from repro.core import compile_graph
from repro.core.fusion import FusionConfig, FusionKind, plan_fusion
from repro.core.symbolic import analyze_shapes
from repro.device import A10
from repro.interp import evaluate
from repro.ir import GraphBuilder, f32
from repro.passes import LowerComposites, PassManager
from repro.runtime import ExecutionEngine


def plan_of(graph, config=None):
    PassManager([LowerComposites()]).run(graph)
    return plan_fusion(graph, analyze_shapes(graph), config)


def stitch_groups(plan):
    return [g for g in plan.groups if g.kind is FusionKind.STITCH]


def test_softmax_is_one_stitch():
    b = GraphBuilder("g")
    rows, cols = b.sym("r"), b.sym("c")
    x = b.parameter("x", (rows, cols), f32)
    b.outputs(b.softmax(x, axis=-1))
    plan = plan_of(b.graph)
    groups = stitch_groups(plan)
    assert len(groups) == 1
    reduces = [m for m in groups[0].members if m.is_reduction]
    assert len(reduces) == 2  # max + sum


def test_consecutive_softmax_layernorm_stitch_together():
    b = GraphBuilder("g")
    rows = b.sym("r")
    x = b.parameter("x", (rows, 32), f32)
    g = b.parameter("g", (32,), f32)
    beta = b.parameter("bb", (32,), f32)
    y = b.softmax(b.layer_norm(x, g, beta), axis=-1)
    b.outputs(y)
    plan = plan_of(b.graph)
    groups = stitch_groups(plan)
    # same row space: one stitched kernel covering all 4 reductions
    assert len(groups) == 1
    assert sum(1 for m in groups[0].members if m.is_reduction) == 4


def test_different_row_spaces_do_not_stitch():
    b = GraphBuilder("g")
    r1, r2 = b.sym("r1"), b.sym("r2")
    x = b.parameter("x", (r1, 16), f32)
    y = b.parameter("y", (r2, 16), f32)
    b.outputs(b.softmax(x, axis=-1), b.softmax(y, axis=-1))
    plan = plan_of(b.graph)
    groups = stitch_groups(plan)
    assert len(groups) == 2


def test_max_stitch_reductions_splits_chains():
    b = GraphBuilder("g")
    rows = b.sym("r")
    x = b.parameter("x", (rows, 16), f32)
    value = x
    for _ in range(4):  # 8 reductions total
        value = b.softmax(value, axis=-1)
    b.outputs(value)
    plan = plan_of(b.graph, FusionConfig(max_stitch_reductions=4))
    for group in stitch_groups(plan):
        assert sum(1 for m in group.members if m.is_reduction) <= 4
    assert len(stitch_groups(plan)) >= 2


def test_non_last_axis_reduce_not_stitched():
    b = GraphBuilder("g")
    rows = b.sym("r")
    x = b.parameter("x", (rows, 8, 16), f32)
    middle = b.reduce_sum(x, axes=1, keepdims=True)   # not last axis
    last = b.reduce_sum(x, axes=2, keepdims=True)
    b.outputs(b.add(b.reduce_sum(middle, axes=(1, 2)),
                    b.reduce_sum(last, axes=(1, 2))))
    plan = plan_of(b.graph)
    for group in stitch_groups(plan):
        for member in group.members:
            if member.is_reduction:
                axes = member.attrs["axes"]
                assert axes == (member.inputs[0].rank - 1,)


def test_stitch_numerics_with_argmax_member(rng):
    """argmax is a legal last-axis reduce; stitching it with a softmax
    must stay correct."""
    b = GraphBuilder("g")
    rows = b.sym("r")
    x = b.parameter("x", (rows, 24), f32)
    probs = b.softmax(x, axis=-1)
    best = b.argmax(x, axis=-1, keepdims=True)
    b.outputs(probs, best)
    engine = ExecutionEngine(compile_graph(b.graph), A10)
    xv = rng.normal(size=(7, 24)).astype(np.float32)
    (p, a), __ = engine.run({"x": xv})
    ep, ea = evaluate(b.graph, {"x": xv})
    assert np.allclose(p, ep, atol=1e-5)
    assert np.array_equal(a, ea)


def test_stitch_multi_output(rng):
    """Intermediates consumed outside the stitch escape as extra outputs."""
    b = GraphBuilder("g")
    rows = b.sym("r")
    x = b.parameter("x", (rows, 16), f32)
    peak = b.reduce_max(x, axes=1, keepdims=True)
    shifted = b.sub(x, peak)
    exped = b.exp(shifted)
    total = b.reduce_sum(exped, axes=1, keepdims=True)
    soft = b.div(exped, total)
    b.outputs(soft, peak)   # peak escapes
    engine = ExecutionEngine(compile_graph(b.graph), A10)
    xv = rng.normal(size=(4, 16)).astype(np.float32)
    (s, p), __ = engine.run({"x": xv})
    es, ep = evaluate(b.graph, {"x": xv})
    assert np.allclose(s, es, atol=1e-5)
    assert np.allclose(p, ep, atol=1e-6)
