"""The fusion planner: partition invariants, kinds, ablation behaviour."""

import pytest

from repro.core.fusion import FusionConfig, FusionKind, plan_fusion
from repro.core.symbolic import ConstraintLevel, analyze_shapes
from repro.ir import GraphBuilder, f32
from repro.passes import LowerComposites, PassManager, default_pipeline

from ..conftest import toy_mlp_graph


def lowered_toy():
    b = toy_mlp_graph()
    PassManager(default_pipeline()).run(b.graph)
    return b.graph


def plan(graph, config=None, level=ConstraintLevel.FULL):
    return plan_fusion(graph, analyze_shapes(graph, level), config)


def test_plan_is_total_partition():
    graph = lowered_toy()
    p = plan(graph)
    covered = {n for g in p.groups for n in g.members}
    compute = {n for n in graph.nodes
               if n.op not in ("parameter", "constant")}
    assert covered == compute


def test_every_group_ordering_is_executable():
    graph = lowered_toy()
    p = plan(graph)
    position = {}
    for i, group in enumerate(p.ordered_groups()):
        for member in group.members:
            position[member] = i
    for node in graph.nodes:
        if node not in position:
            continue
        for operand in node.inputs:
            if operand in position:
                assert position[operand] <= position[node]


def test_softmax_layernorm_become_stitch():
    graph = lowered_toy()
    p = plan(graph)
    stitches = [g for g in p.groups if g.kind is FusionKind.STITCH]
    assert stitches, "expected at least one kStitch group"
    reduces = sum(1 for g in stitches for m in g.members if m.is_reduction)
    assert reduces >= 4  # layer_norm (2) + softmax (2)


def test_dot_is_library_singleton():
    graph = lowered_toy()
    p = plan(graph)
    lib = [g for g in p.groups if g.kind is FusionKind.LIBRARY]
    assert len(lib) == 1
    assert lib[0].members[0].op == "dot"
    assert lib[0].size == 1


def test_ablation_monotone_kernel_count():
    graph = lowered_toy()
    configs = [FusionConfig.none(), FusionConfig.loop_only(),
               FusionConfig.loop_and_input(), FusionConfig()]
    kernels = [plan(graph, c).num_kernels() for c in configs]
    assert kernels[0] >= kernels[1] >= kernels[2] >= kernels[3]
    assert kernels[0] > kernels[3]


def test_no_fusion_yields_singletons():
    graph = lowered_toy()
    p = plan(graph, FusionConfig.none())
    assert all(g.size == 1 for g in p.groups)


def test_constraint_level_affects_fusion():
    graph = lowered_toy()
    full = plan(graph, level=ConstraintLevel.FULL)
    none = plan(graph, level=ConstraintLevel.NONE)
    # Product-equality lets loop fusion cross the reshape boundaries,
    # giving at most the same number of groups.
    assert full.num_kernels() <= none.num_kernels()


def test_max_group_size_respected():
    graph = lowered_toy()
    config = FusionConfig(max_group_size=4)
    p = plan(graph, config)
    assert all(g.size <= 4 for g in p.groups)


def test_transpose_and_lone_reshape_are_metadata():
    b = GraphBuilder("g")
    s = b.sym("s")
    x = b.parameter("x", (s, 4, 8), f32)
    t = b.transpose(x, (0, 2, 1))
    d = b.dot(t, b.parameter("w", (4, 2), f32))
    b.outputs(d)
    p = plan(b.graph)
    kind_of = {g.members[0].op: g.kind for g in p.groups if g.size == 1}
    assert kind_of["transpose"] is FusionKind.METADATA


def test_cycle_avoidance():
    # a -> heavy(dot) -> c ; a -> c  : fusing {a, c} into a loop group
    # would put the dot both after a and before c => cycle.
    b = GraphBuilder("g")
    x = b.parameter("x", (8, 8), f32)
    a = b.exp(x)
    heavy = b.dot(a, b.parameter("w", (8, 8), f32))
    c = b.add(a, heavy)
    b.outputs(c)
    p = plan(b.graph)
    group_a = p.group_of[a]
    group_c = p.group_of[c]
    assert group_a is not group_c


def test_stitch_respects_max_reductions():
    graph = lowered_toy()
    config = FusionConfig(max_stitch_reductions=2)
    p = plan(graph, config)
    for g in p.groups:
        if g.kind is FusionKind.STITCH:
            reduces = sum(1 for m in g.members if m.is_reduction)
            assert reduces <= 2


def test_input_fusion_absorbs_producers():
    b = GraphBuilder("g")
    s = b.sym("s")
    x = b.parameter("x", (s, 64), f32)
    # elementwise chain feeding a NON-last-axis reduce (no stitch seed)
    e = b.mul(b.exp(x), x)
    r = b.reduce_sum(e, axes=0)
    b.outputs(r)
    p = plan(b.graph, FusionConfig.loop_and_input())
    group = p.group_of[r]
    assert group.kind is FusionKind.INPUT
    assert p.group_of[e] is group


def test_stats_shape():
    graph = lowered_toy()
    stats = plan(graph).stats()
    assert set(stats) == {"groups", "kernels", "fused_ops", "by_kind"}
    assert stats["kernels"] <= stats["groups"]


def test_unlowered_composites_become_singletons():
    b = toy_mlp_graph()
    PassManager([LowerComposites()]).run(b.graph)  # lowers everything
    b2 = toy_mlp_graph()  # fresh, unlowered
    p = plan(b2.graph, FusionConfig.none())
    ops = {g.members[0].op for g in p.groups}
    assert "softmax" in ops and "layer_norm" in ops
