"""Serving traces."""

import numpy as np

from repro.models import build_model
from repro.workloads import make_trace


def small_bert():
    return build_model("bert", layers=1, hidden=64, heads=2, vocab=128)


def test_trace_length_and_axes():
    model = small_bert()
    trace = make_trace(model, 20, "zipf", seed=0)
    assert len(trace) == 20
    for values in trace.axis_values:
        assert set(values) == {"batch", "seqlen"}
        lo, hi = model.axes["seqlen"]
        assert lo <= values["seqlen"] <= hi


def test_inputs_materialise_and_cache():
    model = small_bert()
    trace = make_trace(model, 5, "uniform", seed=1)
    first = trace.inputs()
    second = trace.inputs()
    assert first is second  # cached
    for values, inputs in zip(trace.axis_values, first):
        assert inputs["input_ids"].shape == (values["batch"],
                                             values["seqlen"])


def test_fixed_axes_pinning():
    model = small_bert()
    trace = make_trace(model, 10, "zipf", seed=0,
                       fixed_axes={"batch": 1})
    assert all(v["batch"] == 1 for v in trace.axis_values)


def test_distinct_signatures():
    model = small_bert()
    fixed = make_trace(model, 10, "fixed", seed=0)
    assert fixed.distinct_signatures() == 1
    varied = make_trace(model, 50, "uniform", seed=0)
    assert varied.distinct_signatures() > 5


def test_trace_replayable_identically():
    model = small_bert()
    t1 = make_trace(model, 5, "zipf", seed=7)
    t2 = make_trace(model, 5, "zipf", seed=7)
    assert t1.axis_values == t2.axis_values
    for a, b in zip(t1.inputs(), t2.inputs()):
        assert np.array_equal(a["input_ids"], b["input_ids"])
