"""Axis-value distributions."""

import numpy as np
import pytest

from repro.workloads import DISTRIBUTIONS, sample_axis


@pytest.fixture
def rng():
    return np.random.default_rng(3)


@pytest.mark.parametrize("dist", DISTRIBUTIONS)
def test_values_in_range(rng, dist):
    values = sample_axis(rng, 8, 128, 500, dist)
    assert values.min() >= 8
    assert values.max() <= 128
    assert len(values) == 500


def test_fixed_is_constant(rng):
    values = sample_axis(rng, 10, 20, 50, "fixed")
    assert (values == 15).all()


def test_zipf_skews_short(rng):
    values = sample_axis(rng, 1, 100, 5000, "zipf")
    assert np.median(values) < 30
    assert values.max() > 50  # tail still reached


def test_uniform_covers_range(rng):
    values = sample_axis(rng, 1, 10, 5000, "uniform")
    assert set(values.tolist()) == set(range(1, 11))


def test_bimodal_two_clusters(rng):
    values = sample_axis(rng, 0, 160, 5000, "bimodal")
    hist, __ = np.histogram(values, bins=8, range=(0, 160))
    # mass concentrated in two separated bins
    top_two = np.sort(hist)[-2:]
    assert top_two.sum() > 0.6 * len(values)


def test_unknown_distribution_rejected(rng):
    with pytest.raises(ValueError):
        sample_axis(rng, 1, 10, 5, "gaussian")


def test_empty_range_rejected(rng):
    with pytest.raises(ValueError):
        sample_axis(rng, 10, 5, 5, "uniform")


def test_deterministic_given_seed():
    a = sample_axis(np.random.default_rng(9), 1, 100, 50, "zipf")
    b = sample_axis(np.random.default_rng(9), 1, 100, 50, "zipf")
    assert np.array_equal(a, b)
