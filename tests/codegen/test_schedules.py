"""Schedule variants and the runtime selector."""

import pytest

from repro.core.codegen.schedules import (ELEMENTWISE_SCHEDULES,
                                          REDUCTION_SCHEDULES,
                                          schedule_named,
                                          select_elementwise,
                                          select_reduction)


def test_schedule_registry():
    for s in ELEMENTWISE_SCHEDULES + REDUCTION_SCHEDULES:
        assert schedule_named(s.name) is s
    with pytest.raises(KeyError):
        schedule_named("nope")


def test_unknown_schedule_error_lists_valid_names():
    """The KeyError must name every valid choice — generic variants and
    both tuned families — so a typo'd plan or CLI flag self-documents."""
    with pytest.raises(KeyError) as err:
        schedule_named("row_tile_64")  # malformed tuned name
    message = str(err.value)
    for s in ELEMENTWISE_SCHEDULES + REDUCTION_SCHEDULES:
        assert s.name in message
    assert "row_tile_t<threads>v<width>[s<split>]" in message
    assert "ew_vec<width>" in message


def test_tuned_family_names_round_trip():
    for name in ("ew_vec2", "ew_vec8", "row_tile_t64v1",
                 "row_tile_t256v4s8"):
        schedule = schedule_named(name)
        assert schedule.name == name
        assert schedule.tuned
    split = schedule_named("row_tile_t256v4s8")
    assert (split.block_threads, split.vector_width, split.col_split) \
        == (256, 4, 8)
    assert split.extra_launches == 1
    with pytest.raises(ValueError):
        schedule_named("ew_vec3")  # well-formed name, unsupported width
    with pytest.raises(ValueError):
        schedule_named("row_tile_t0v1")


def test_elementwise_selector_vectorizes_multiples_of_4():
    assert select_elementwise(1024, 256).name == "vectorized4"
    assert select_elementwise(1024, 255).name == "flat"
    assert select_elementwise(2, 1).name == "flat"


def test_reduction_selector_thresholds():
    assert select_reduction(rows=4096, cols=256).name == "row_per_warp"
    assert select_reduction(rows=512, cols=8192).name == "row_per_block"
    assert select_reduction(rows=4, cols=1 << 20).name == "two_pass"


def test_selector_tracks_best_profile():
    """The dispatch stub should pick (near-)argmin of the *cost model*
    across a spread of shapes — the property E9 measures."""
    from repro.device import A10, KernelSpec, kernel_time_us

    shapes = [(16384, 64), (4096, 512), (512, 4096), (64, 32768),
              (8, 1 << 18)]
    for rows, cols in shapes:
        chosen = select_reduction(rows, cols)

        def simulated_time(schedule):
            eff, parallel = schedule.reduction_profile(rows, cols)
            spec = KernelSpec(
                name="reduce", bytes_read=rows * cols * 4,
                bytes_written=rows * 4, flops=rows * cols,
                parallel_elements=int(parallel), efficiency=eff,
                extra_launches=schedule.extra_launches)
            return kernel_time_us(spec, A10)

        best = min(REDUCTION_SCHEDULES, key=simulated_time)
        assert simulated_time(chosen) <= 1.5 * simulated_time(best), \
            f"poor selection at rows={rows} cols={cols}: chose " \
            f"{chosen.name}, best {best.name}"


def test_two_pass_costs_extra_launch():
    assert schedule_named("two_pass").extra_launches == 1
    assert schedule_named("row_per_warp").extra_launches == 0


def test_profiles_reject_wrong_family():
    flat = schedule_named("flat")
    with pytest.raises(ValueError):
        flat.reduction_profile(4, 4)
    warp = schedule_named("row_per_warp")
    with pytest.raises(ValueError):
        warp.elementwise_profile(100)
