"""Golden tests for generated kernel source.

These snapshots protect the shape of the compile-time/runtime split: any
change that makes generated kernels resolve something at compile time that
must stay runtime (or vice versa) shows up here as a diff.
"""

from repro.core import compile_graph
from repro.core.fusion.kinds import FusionKind
from repro.ir import GraphBuilder, f32


def softmax_source():
    b = GraphBuilder("g")
    rows, cols = b.sym("rows"), b.sym("cols")
    x = b.parameter("x", (rows, cols), f32)
    b.outputs(b.softmax(x, axis=-1))
    exe = compile_graph(b.graph)
    (stitch,) = [k for k in exe.kernels
                 if k.kind is FusionKind.STITCH]
    return stitch.source


def test_softmax_stitch_golden():
    source = softmax_source()
    # statements, in dependency order
    expected_fragments = [
        "def kStitch_",
        "(args, dims):",
        "np.max(",          # first reduction
        "keepdims=True",
        "_broadcast(",      # row value back over the row
        "('rows', 'cols')",  # symbolic shapes resolved at RUN time
        "np.exp(",
        "np.sum(",          # second reduction
        "_div(",
        "return (",
    ]
    position = -1
    for fragment in expected_fragments[:2] + ["np.max("]:
        assert fragment in source, f"missing {fragment!r}\n{source}"
    for fragment in ["np.max(", "np.exp(", "np.sum(", "_div("]:
        next_position = source.index(fragment)
        assert next_position > position, \
            f"{fragment!r} out of order\n{source}"
        position = next_position
    for fragment in expected_fragments:
        assert fragment in source, f"missing {fragment!r}\n{source}"


def test_no_concrete_shapes_in_source():
    """Compile once means no shape *values* may appear in kernel text."""
    source = softmax_source()
    # symbols appear as quoted names, never as resolved integers
    assert "'rows'" in source and "'cols'" in source
    assert "dims" in source


def test_source_compiles_under_exec():
    source = softmax_source()
    namespace = {}
    from repro.core.codegen.support import SUPPORT_NAMESPACE
    namespace.update(SUPPORT_NAMESPACE)
    exec(compile(source, "<golden>", "exec"), namespace)
    fn_name = source.split("(")[0].replace("def ", "")
    assert callable(namespace[fn_name])


def test_deterministic_emission():
    assert softmax_source() == softmax_source()
