"""Expression emission for generated kernels."""

import pytest

from repro.core.codegen.exprs import EmitError, emit_statement, \
    serialize_shape
from repro.ir import GraphBuilder, f32, i64


def emit_for(build):
    b = GraphBuilder("g")
    node = build(b)
    names = {}
    for n in b.graph.nodes:
        names[n] = f"v{n.id}"
    return emit_statement(node, names)


def test_serialize_shape():
    b = GraphBuilder("g")
    s = b.sym("batch")
    assert serialize_shape((s, 4)) == ("batch", 4)


def test_infix_binary():
    stmt = emit_for(lambda b: b.add(b.parameter("x", (4,), f32),
                                    b.parameter("y", (4,), f32)))
    assert "+" in stmt and stmt.startswith("v2 = ")


def test_unary_np():
    stmt = emit_for(lambda b: b.exp(b.parameter("x", (4,), f32)))
    assert "np.exp(" in stmt


def test_support_unary():
    stmt = emit_for(lambda b: b.erf(b.parameter("x", (4,), f32)))
    assert "_erf(" in stmt


def test_broadcast_serializes_symbols():
    def build(b):
        s = b.sym("s")
        v = b.parameter("v", (8,), f32)
        return b.broadcast_in_dim(v, (s, 8), (1,))
    stmt = emit_for(build)
    assert "_broadcast(" in stmt and "'s'" in stmt


def test_reshape_emits_dims_call():
    def build(b):
        s = b.sym("s")
        x = b.parameter("x", (s, 8), f32)
        return b.reshape(x, (b.sym("t"), 4))
    stmt = emit_for(build)
    assert "_reshape(" in stmt and "dims" in stmt


def test_reduce_emits_keepdims():
    def build(b):
        x = b.parameter("x", (4, 8), f32)
        return b.reduce_max(x, axes=1, keepdims=True)
    stmt = emit_for(build)
    assert "np.max(" in stmt and "keepdims=True" in stmt


def test_cast_emits_astype():
    def build(b):
        return b.cast(b.parameter("x", (4,), f32), i64)
    assert ".astype(np.int64)" in emit_for(build)


def test_composites_emit_support_calls():
    def build(b):
        x = b.parameter("x", (4, 8), f32)
        return b.softmax(x)
    assert "_softmax(" in emit_for(build)


def test_dot_and_conv():
    def build_dot(b):
        return b.dot(b.parameter("x", (4, 8), f32),
                     b.parameter("w", (8, 2), f32))
    assert "np.matmul(" in emit_for(build_dot)

    def build_conv(b):
        return b.conv2d(b.parameter("x", (1, 8, 8, 3), f32),
                        b.parameter("w", (3, 3, 3, 4), f32))
    assert "_conv2d(" in emit_for(build_conv)


def test_parameter_has_no_expression():
    b = GraphBuilder("g")
    x = b.parameter("x", (4,), f32)
    with pytest.raises(EmitError):
        emit_statement(x, {x: "v0"})
