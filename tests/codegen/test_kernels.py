"""Fused-kernel compilation: source generation, execution, cost recipes."""

import numpy as np
import pytest

from repro.core.codegen.kernels import compile_group
from repro.core.fusion import FusionConfig, FusionKind, plan_fusion
from repro.core.symbolic import analyze_shapes
from repro.ir import GraphBuilder, f32
from repro.passes import PassManager, default_pipeline

from ..conftest import toy_mlp_graph, toy_mlp_inputs


def compile_all(graph, config=None):
    analysis = analyze_shapes(graph)
    plan = plan_fusion(graph, analysis, config)
    users = graph.users()
    return [compile_group(g, users, graph.outputs)
            for g in plan.ordered_groups()]


def test_generated_source_is_real_python():
    b = toy_mlp_graph()
    PassManager(default_pipeline()).run(b.graph)
    kernels = compile_all(b.graph)
    stitch = [k for k in kernels if k.kind is FusionKind.STITCH]
    assert stitch
    src = stitch[0].source
    assert src.startswith("def kStitch_")
    assert "np.exp(" in src or "np.max(" in src
    assert "return (" in src


def test_kernel_executes_standalone(rng):
    b = GraphBuilder("g")
    s = b.sym("s")
    x = b.parameter("x", (s, 8), f32)
    out = b.mul(b.exp(x), b.scalar(2.0))
    b.outputs(out)
    kernels = compile_all(b.graph)
    loops = [k for k in kernels if k.kind is FusionKind.LOOP]
    assert len(loops) == 1
    kernel = loops[0]
    xv = rng.normal(size=(3, 8)).astype(np.float32)
    args = []
    for node in kernel.input_nodes:
        if node.op == "parameter":
            args.append(xv)
        else:
            args.append(node.attrs["value"])
    (result,) = kernel.execute(args, {"s": 3})
    assert np.allclose(result, np.exp(xv) * 2.0, atol=1e-5)


def test_cost_recipe_bytes_scale_with_dims():
    b = GraphBuilder("g")
    s = b.sym("s")
    x = b.parameter("x", (s, 8), f32)
    b.outputs(b.exp(x))
    (kernel,) = [k for k in compile_all(b.graph)
                 if k.kind in (FusionKind.LOOP, FusionKind.SINGLETON)]
    r1, w1 = kernel.recipe.eval_bytes({"s": 10})
    r2, w2 = kernel.recipe.eval_bytes({"s": 20})
    assert r2 == 2 * r1 and w2 == 2 * w1
    assert w1 == 10 * 8 * 4


def test_dot_flops_formula():
    b = GraphBuilder("g")
    s = b.sym("s")
    x = b.parameter("x", (s, 32), f32)
    w = b.parameter("w", (32, 16), f32)
    b.outputs(b.dot(x, w))
    (kernel,) = [k for k in compile_all(b.graph)
                 if k.kind is FusionKind.LIBRARY]
    assert kernel.recipe.eval_flops({"s": 10}) == 2.0 * 10 * 32 * 16


def test_library_kernel_cost_is_occupancy_exempt():
    b = GraphBuilder("g")
    x = b.parameter("x", (4, 32), f32)
    w = b.parameter("w", (32, 16), f32)
    b.outputs(b.dot(x, w))
    (kernel,) = [k for k in compile_all(b.graph)
                 if k.kind is FusionKind.LIBRARY]
    spec = kernel.cost_spec({}, None)
    assert spec.occupancy_exempt


def test_gather_reads_rows_not_table(rng):
    from repro.ir import i64
    b = GraphBuilder("g")
    s = b.sym("s")
    table = b.parameter("table", (10000, 64), f32)
    ids = b.parameter("ids", (s,), i64)
    b.outputs(b.gather(table, ids))
    (kernel,) = [k for k in compile_all(b.graph)
                 if k.kind is FusionKind.SINGLETON]
    read, written = kernel.recipe.eval_bytes({"s": 8})
    table_bytes = 10000 * 64 * 4
    assert read < table_bytes
    assert written == 8 * 64 * 4


def test_schedule_domain_rows_for_stitch():
    b = toy_mlp_graph()
    PassManager(default_pipeline()).run(b.graph)
    kernels = compile_all(b.graph)
    stitch = [k for k in kernels if k.kind is FusionKind.STITCH][0]
    assert stitch.recipe.domain[0] == "rows"
    schedule = stitch.select_schedule({"batch": 512, "seq": 2, "bs": 1024})
    assert schedule.name in ("row_per_warp", "row_per_block", "two_pass")


def test_multi_output_kernel(rng):
    b = GraphBuilder("g")
    x = b.parameter("x", (4,), f32)
    a = b.exp(x)
    b.outputs(b.neg(a), a)  # 'a' escapes the fused group too
    kernels = compile_all(b.graph)
    fused = [k for k in kernels if len(k.members) == 2]
    assert fused, "exp+neg should fuse"
    kernel = fused[0]
    assert len(kernel.output_nodes) == 2
    xv = rng.normal(size=(4,)).astype(np.float32)
    outs = kernel.execute([xv], {})
    by_node = dict(zip(kernel.output_nodes, outs))
    for node, value in by_node.items():
        if node.op == "neg":
            assert np.allclose(value, -np.exp(xv), atol=1e-6)
        else:
            assert np.allclose(value, np.exp(xv), atol=1e-6)


def test_composite_flop_accounting():
    b = GraphBuilder("g")
    x = b.parameter("x", (4, 8), f32)
    b.outputs(b.softmax(x))
    kernels = compile_all(b.graph, FusionConfig.none())
    soft = [k for k in kernels if k.members[0].op == "softmax"][0]
    assert soft.recipe.eval_flops({}) == 8.0 * 32
