"""Fusion planner invariants over randomly generated graphs.

A random elementwise/reduce/reshape DAG is built over symbolic dims; for
every fusion configuration the plan must be a total acyclic partition, and
the compiled executable must agree with the reference interpreter — fusion
may never change semantics.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import CompileOptions, compile_graph
from repro.core.fusion import FusionConfig, plan_fusion
from repro.core.symbolic import analyze_shapes
from repro.device import A10
from repro.interp import evaluate
from repro.runtime import ExecutionEngine

from ..strategies import random_graph


configs = st.sampled_from([
    FusionConfig.none(), FusionConfig.loop_only(),
    FusionConfig.loop_and_input(), FusionConfig(),
    FusionConfig(loop_include_reshape=False),
    FusionConfig(max_group_size=3),
])


@given(st.data(), configs)
@settings(max_examples=60, deadline=None)
def test_plan_partition_invariants(data, config):
    graph = random_graph(data.draw)
    plan = plan_fusion(graph, analyze_shapes(graph), config)
    # totality: every compute node in exactly one group
    counts = {}
    for group in plan.groups:
        for member in group.members:
            counts[member] = counts.get(member, 0) + 1
    compute = [n for n in graph.nodes
               if n.op not in ("parameter", "constant")]
    assert all(counts.get(n, 0) == 1 for n in compute)
    # size limit respected
    assert all(g.size <= config.max_group_size for g in plan.groups)
    # executable order exists (ordered_groups respects dependencies)
    position = {}
    for i, group in enumerate(plan.ordered_groups()):
        for member in group.members:
            position[member] = i
    for node in compute:
        for operand in node.inputs:
            if operand in position:
                assert position[operand] <= position[node]


@given(st.data(), configs)
@settings(max_examples=30, deadline=None)
def test_fusion_never_changes_semantics(data, config):
    graph = random_graph(data.draw)
    exe = compile_graph(graph, CompileOptions(fusion=config))
    engine = ExecutionEngine(exe, A10)
    rng = np.random.default_rng(0)
    for s_value in (1, 5):
        inputs = {"x": rng.normal(size=(s_value, 8)).astype(np.float32)}
        expected = evaluate(graph, inputs)
        actual, __ = engine.run(inputs)
        for e, a in zip(expected, actual):
            assert np.allclose(e, a, atol=1e-4, rtol=1e-4)
