"""Union-find laws under random operation sequences."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.symbolic import ContradictionError, UnionFind

from ..strategies import union_ops as ops


@given(ops)
@settings(max_examples=200)
def test_same_is_equivalence_relation(pairs):
    uf = UnionFind()
    for a, b in pairs:
        uf.union(a, b)
    universe = list("abcdefgh")
    # reflexive
    for k in universe:
        assert uf.same(k, k)
    # symmetric + transitive
    for a in universe:
        for b in universe:
            assert uf.same(a, b) == uf.same(b, a)
            for c in universe:
                if uf.same(a, b) and uf.same(b, c):
                    assert uf.same(a, c)


@given(ops)
@settings(max_examples=200)
def test_union_find_matches_naive_partition(pairs):
    uf = UnionFind()
    naive: list[set] = [{k} for k in "abcdefgh"]

    def find_set(key):
        for group in naive:
            if key in group:
                return group
        raise AssertionError

    for a, b in pairs:
        uf.union(a, b)
        ga, gb = find_set(a), find_set(b)
        if ga is not gb:
            ga |= gb
            naive.remove(gb)
    for a in "abcdefgh":
        for b in "abcdefgh":
            assert uf.same(a, b) == (find_set(a) is find_set(b))


@given(ops, st.integers(min_value=1, max_value=5))
@settings(max_examples=100)
def test_constant_propagates_to_whole_class(pairs, value):
    uf = UnionFind()
    try:
        for a, b in pairs:
            uf.union(a, b)
        uf.union("a", value)
    except ContradictionError:
        return
    for key in "abcdefgh":
        if uf.same(key, "a"):
            assert uf.constant_of(key) == value
