"""Symbol-resolution properties: binding agrees with real array shapes."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ir import GraphBuilder, f32
from repro.numerics import (bind_inputs, resolve_all_dims,
                            solve_reshape_shape, unify_shape)
from repro.ir.shapes import SymDim

from ..strategies import dims


@given(st.lists(dims, min_size=1, max_size=4))
@settings(max_examples=100)
def test_unify_binds_every_symbol(shape):
    syms = tuple(SymDim(f"d{i}") for i in range(len(shape)))
    bindings = {}
    unify_shape(syms, shape, bindings)
    assert bindings == {f"d{i}": v for i, v in enumerate(shape)}


@given(dims, dims, dims)
@settings(max_examples=100)
def test_solve_reshape_matches_numpy_minus_one(a, b, c):
    total = a * b * c
    bindings = {"a": a}
    resolved = solve_reshape_shape((SymDim("a"), SymDim("x"), c), total,
                                   bindings)
    expected = np.zeros(total).reshape(a, -1, c).shape
    assert resolved == tuple(expected)
    assert bindings["x"] == expected[1]


@given(dims, dims, dims)
@settings(max_examples=60)
def test_resolve_all_dims_agrees_with_execution(a, b, c):
    builder = GraphBuilder("g")
    s1, s2 = builder.sym("s1"), builder.sym("s2")
    x = builder.parameter("x", (s1, s2, c), f32)
    flat = builder.reshape(x, (builder.sym("flat"), c))
    builder.outputs(flat)
    bindings = bind_inputs(builder.graph.params, {
        "x": np.zeros((a, b, c), dtype=np.float32)})
    resolve_all_dims(builder.graph.nodes, bindings)
    assert bindings["flat"] == a * b


@given(st.lists(dims, min_size=2, max_size=4), st.data())
@settings(max_examples=60)
def test_bind_inputs_consistency_is_exact(shape, data):
    builder = GraphBuilder("g")
    syms = tuple(builder.sym(f"d{i}") for i in range(len(shape)))
    builder.parameter("x", syms, f32)
    builder.parameter("y", (syms[0],), f32)
    x = np.zeros(tuple(shape), dtype=np.float32)
    y = np.zeros((shape[0],), dtype=np.float32)
    bindings = bind_inputs(builder.graph.params, {"x": x, "y": y})
    assert bindings["d0"] == shape[0]
