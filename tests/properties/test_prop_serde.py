"""Serialisation round-trips over random graphs."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.interp import evaluate
from repro.ir import print_graph, verify
from repro.ir.serde import graph_from_dict, graph_to_dict

from ..strategies import fuzz_graphs, random_graph


@given(st.data())
@settings(max_examples=40, deadline=None)
def test_round_trip_verifies_and_prints_identically(data):
    graph = random_graph(data.draw)
    loaded = graph_from_dict(graph_to_dict(graph))
    verify(loaded)
    assert print_graph(loaded) == print_graph(graph)


@given(st.data(), st.integers(1, 6))
@settings(max_examples=30, deadline=None)
def test_round_trip_numerics_bit_identical(data, s_value):
    graph = random_graph(data.draw)
    loaded = graph_from_dict(graph_to_dict(graph))
    rng = np.random.default_rng(0)
    inputs = {"x": rng.normal(size=(s_value, 8)).astype(np.float32)}
    original = evaluate(graph, inputs)
    reloaded = evaluate(loaded, inputs)
    for a, b in zip(original, reloaded):
        assert a.dtype == b.dtype
        assert np.array_equal(a, b, equal_nan=True)


@given(st.data())
@settings(max_examples=20, deadline=None)
def test_double_round_trip_is_stable(data):
    graph = random_graph(data.draw)
    once = graph_to_dict(graph)
    twice = graph_to_dict(graph_from_dict(once))
    assert once == twice


@given(fuzz_graphs())
@settings(max_examples=20, deadline=None)
def test_fuzz_generator_graphs_round_trip(graph):
    """The broader fuzz-generator op mix survives serde unchanged too."""
    loaded = graph_from_dict(graph_to_dict(graph))
    verify(loaded)
    assert print_graph(loaded) == print_graph(graph)
