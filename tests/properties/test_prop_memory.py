"""Buffer-planner properties over random interval sets."""

from hypothesis import given, settings

from repro.runtime.memory import BufferPlan

from ..strategies import interval_sets


@given(interval_sets)
@settings(max_examples=200)
def test_no_overlapping_intervals_share_a_slot(intervals):
    plan = BufferPlan(intervals)
    plan.verify_no_overlap_sharing()


@given(interval_sets)
@settings(max_examples=200)
def test_peak_never_exceeds_naive(intervals):
    plan = BufferPlan(intervals)
    stats = plan.evaluate({})
    assert stats["peak_bytes"] <= stats["naive_bytes"]
    assert stats["slots"] <= max(1, len(intervals)) or not intervals


@given(interval_sets)
@settings(max_examples=200)
def test_peak_lower_bound_is_max_concurrent_usage(intervals):
    """At any time step, the sum of live values' sizes is a lower bound
    on the reused peak (each live value must reside somewhere)."""
    plan = BufferPlan(intervals)
    stats = plan.evaluate({})
    for t in range(0, 75):
        live = sum(iv.bytes_at({}) for iv in intervals
                   if iv.start <= t <= iv.end)
        assert stats["peak_bytes"] >= live


@given(interval_sets)
@settings(max_examples=100)
def test_slot_count_matches_max_concurrency(intervals):
    """Greedy colouring of an interval graph uses exactly the maximum
    number of simultaneously-live intervals (interval graphs are
    perfect)."""
    plan = BufferPlan(intervals)
    max_live = 0
    for t in range(0, 75):
        live = sum(1 for iv in intervals if iv.start <= t <= iv.end)
        max_live = max(max_live, live)
    assert plan.num_slots == max_live
