"""Cost-model sanity properties over random kernel specs."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.device import A10, T4, KernelSpec, kernel_time_us, occupancy

from ..strategies import kernel_specs as spec_strategy


@given(spec_strategy)
@settings(max_examples=200)
def test_time_is_positive_and_finite(spec):
    for device in (A10, T4):
        t = kernel_time_us(spec, device)
        assert t > 0
        assert t < 1e12


@given(spec_strategy)
@settings(max_examples=200)
def test_t4_never_faster(spec):
    assert kernel_time_us(spec, T4) >= kernel_time_us(spec, A10) - 1e-9


@given(spec_strategy, st.integers(2, 10))
@settings(max_examples=100)
def test_more_bytes_never_faster(spec, factor):
    bigger = KernelSpec(
        name=spec.name, bytes_read=spec.bytes_read * factor,
        bytes_written=spec.bytes_written * factor, flops=spec.flops,
        parallel_elements=spec.parallel_elements,
        efficiency=spec.efficiency, extra_launches=spec.extra_launches,
        occupancy_exempt=spec.occupancy_exempt)
    assert kernel_time_us(bigger, A10) >= kernel_time_us(spec, A10) - 1e-9


@given(st.integers(0, 1 << 30), st.integers(0, 1 << 30))
@settings(max_examples=200)
def test_occupancy_monotone(a, b):
    lo, hi = min(a, b), max(a, b)
    assert occupancy(lo, A10) <= occupancy(hi, A10)
    assert 0 < occupancy(lo, A10) <= 1.0


@given(spec_strategy)
@settings(max_examples=100)
def test_higher_efficiency_never_slower(spec):
    better = KernelSpec(
        name=spec.name, bytes_read=spec.bytes_read,
        bytes_written=spec.bytes_written, flops=spec.flops,
        parallel_elements=spec.parallel_elements,
        efficiency=spec.efficiency * 1.5,
        extra_launches=spec.extra_launches,
        occupancy_exempt=spec.occupancy_exempt)
    assert kernel_time_us(better, A10) <= kernel_time_us(spec, A10) + 1e-9
