"""Shape-inference soundness against numpy ground truth.

For randomly generated shapes, symbolic inference followed by substitution
must agree exactly with what numpy computes on concrete arrays.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ir import GraphBuilder, f32
from repro.ir.shapes import num_elements, substitute
from repro.interp import evaluate

from ..strategies import shapes


@given(shapes)
@settings(max_examples=100)
def test_num_elements_matches_numpy(shape):
    assert num_elements(shape) == np.empty(shape).size


@given(shapes, st.data())
@settings(max_examples=100)
def test_broadcast_inference_matches_numpy(shape, data):
    # build a broadcastable "from" shape by replacing a suffix's dims
    # with 1 or keeping them
    rank = len(shape)
    keep = data.draw(st.integers(min_value=0, max_value=rank))
    src = tuple(d if data.draw(st.booleans()) else 1
                for d in shape[rank - keep:]) if keep else ()
    b = GraphBuilder("g")
    x = b.parameter("x", src, f32)
    y = b.broadcast_to(x, shape)
    assert y.shape == shape
    expected = np.broadcast_to(np.zeros(src, np.float32), shape)
    assert tuple(expected.shape) == y.shape


@given(shapes, st.data())
@settings(max_examples=100)
def test_transpose_inference_matches_numpy(shape, data):
    perm = data.draw(st.permutations(range(len(shape)))) \
        if len(shape) > 1 else [0]
    b = GraphBuilder("g")
    x = b.parameter("x", shape, f32)
    t = b.transpose(x, tuple(perm))
    expected = np.transpose(np.zeros(shape), perm).shape
    assert t.shape == tuple(expected)


@given(shapes, st.data())
@settings(max_examples=100)
def test_reduce_inference_matches_numpy(shape, data):
    axes = tuple(sorted(data.draw(st.sets(
        st.integers(0, len(shape) - 1), min_size=1))))
    keepdims = data.draw(st.booleans())
    b = GraphBuilder("g")
    x = b.parameter("x", shape, f32)
    r = b.reduce(x, "sum", axes, keepdims)
    expected = np.sum(np.zeros(shape), axis=axes, keepdims=keepdims).shape
    assert r.shape == tuple(expected)


@given(shapes)
@settings(max_examples=60)
def test_symbolic_substitution_roundtrip(shape):
    """Building with symbols then substituting concrete values matches
    building statically."""
    b = GraphBuilder("g")
    syms = tuple(b.sym(f"d{i}") for i in range(len(shape)))
    x = b.parameter("x", syms, f32)
    y = b.exp(x)
    bindings = {f"d{i}": v for i, v in enumerate(shape)}
    assert substitute(y.shape, bindings) == shape


@given(st.integers(1, 5), st.integers(1, 5), st.integers(1, 5))
@settings(max_examples=60)
def test_reshape_flatten_roundtrip_executes(a, bdim, c):
    b = GraphBuilder("g")
    s1, s2 = b.sym("s1"), b.sym("s2")
    x = b.parameter("x", (s1, s2, c), f32)
    flat = b.reshape(x, (b.sym("flat"), c))
    back = b.reshape(flat, (s1, s2, c))
    b.outputs(back)
    xv = np.arange(a * bdim * c, dtype=np.float32).reshape(a, bdim, c)
    (out,) = evaluate(b.graph, {"x": xv})
    assert np.array_equal(out, xv)
