"""Replay the checked-in fuzz corpus through the differential oracle.

Every file under ``tests/regressions/corpus`` is a minimized repro of a
bug the fuzzer once found (or a hand-shrunk coverage case for a fragile
path).  Each is deserialized via ``ir.serde`` and re-checked against every
executor — a fixed bug stays fixed.
"""

from pathlib import Path

import pytest

from repro.fuzz import DifferentialOracle, load_case
from repro.fuzz.corpus import iter_corpus
from repro.ir import verify

CORPUS_DIR = Path(__file__).parent / "corpus"
CASES = iter_corpus(CORPUS_DIR)


def test_corpus_is_not_empty():
    assert CASES, "regression corpus went missing"


@pytest.mark.parametrize("path", CASES, ids=lambda p: p.stem)
def test_corpus_case_verifies(path):
    graph, _bindings, _meta = load_case(path)
    verify(graph)


@pytest.mark.parametrize("path", CASES, ids=lambda p: p.stem)
def test_corpus_case_passes_differential_check(path):
    graph, bindings, meta = load_case(path)
    oracle = DifferentialOracle()
    result = oracle.check_case(graph, bindings,
                               input_seed=int(meta.get("input_seed", 0)))
    assert result.ok, (
        f"{path.name} regressed ({meta.get('note', '')}): "
        + "; ".join(str(f) for f in result.failures))


@pytest.mark.parametrize("path", CASES, ids=lambda p: p.stem)
def test_corpus_case_has_triage_note(path):
    _graph, _bindings, meta = load_case(path)
    assert meta.get("note"), "every corpus case must say why it exists"
