"""Replay the checked-in fuzz corpus through the differential oracle.

Every file under ``tests/regressions/corpus`` is a minimized repro of a
bug the fuzzer once found (or a hand-shrunk coverage case for a fragile
path).  Each is deserialized via ``ir.serde`` and re-checked against every
executor — a fixed bug stays fixed.
"""

from pathlib import Path

import pytest

from repro.fuzz import DifferentialOracle, load_case
from repro.fuzz.corpus import iter_corpus
from repro.ir import verify

CORPUS_DIR = Path(__file__).parent / "corpus"
CASES = iter_corpus(CORPUS_DIR)


def test_corpus_is_not_empty():
    assert CASES, "regression corpus went missing"


@pytest.mark.parametrize("path", CASES, ids=lambda p: p.stem)
def test_corpus_case_verifies(path):
    graph, _bindings, _meta = load_case(path)
    verify(graph)


@pytest.mark.parametrize("path", CASES, ids=lambda p: p.stem)
def test_corpus_case_passes_differential_check(path):
    graph, bindings, meta = load_case(path)
    oracle = DifferentialOracle()
    result = oracle.check_case(graph, bindings,
                               input_seed=int(meta.get("input_seed", 0)))
    assert result.ok, (
        f"{path.name} regressed ({meta.get('note', '')}): "
        + "; ".join(str(f) for f in result.failures))


@pytest.mark.parametrize("path", CASES, ids=lambda p: p.stem)
def test_corpus_case_has_triage_note(path):
    _graph, _bindings, meta = load_case(path)
    assert meta.get("note"), "every corpus case must say why it exists"


# ---------------------------------------------------------------------------
# lint replay: the collect-all analyzers over every corpus case
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("path", CASES, ids=lambda p: p.stem)
def test_corpus_case_lints_clean(path):
    """Every corpus case reports exactly the codes its metadata expects.

    ``verify`` raising on the first defect used to be a blind spot: a case
    exercising several broken invariants only ever pinned the first one.
    The lint replay closes it — the full diagnostic set is compared, so a
    case is a regression both when an expected code disappears *and* when
    a new one appears.  Most cases expect the empty set (they are fixed
    bugs); a case may declare ``expected_lint`` in its metadata.
    """
    from repro.lint import lint_graph

    graph, _bindings, meta = load_case(path)
    sink = lint_graph(graph)
    expected = set(meta.get("expected_lint", []))
    assert sink.codes() == expected, (
        f"{path.name}: lint codes {sorted(sink.codes())} != expected "
        f"{sorted(expected)}:\n{sink.render()}")


def test_multi_defect_graph_reports_all_codes_not_just_the_first():
    """The fail-fast blind spot itself, replayed on a corpus graph.

    Seed three independent defects into one corpus graph; ``verify``
    stops at one of them, the linter must surface all three.
    """
    from repro.ir import f64
    from repro.lint import lint_graph

    graph, _bindings, _meta = load_case(CASES[0])
    compute = [n for n in graph.nodes
               if n.op not in ("parameter", "constant")]
    compute[0].shape = tuple(99 for _ in compute[0].shape)   # L006 (+L101)
    compute[1].dtype = f64                                   # L006
    compute[2].id = compute[1].id                            # L010
    sink = lint_graph(graph)
    assert {"L006", "L010"} <= sink.codes()
    assert len(sink.by_code("L006")) >= 2, (
        "independent defects must not mask each other:\n" + sink.render())

    with pytest.raises(Exception):
        verify(graph)  # the fail-fast gate sees (at most) one of them
