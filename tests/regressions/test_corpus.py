"""Replay the checked-in fuzz corpus through the differential oracle.

Every file under ``tests/regressions/corpus`` is a minimized repro of a
bug the fuzzer once found (or a hand-shrunk coverage case for a fragile
path).  Each is deserialized via ``ir.serde`` and re-checked against every
executor — a fixed bug stays fixed.
"""

from pathlib import Path

import pytest

from repro.fuzz import DifferentialOracle, load_case
from repro.fuzz.corpus import iter_corpus
from repro.ir import verify

CORPUS_DIR = Path(__file__).parent / "corpus"
CASES = iter_corpus(CORPUS_DIR)


def test_corpus_is_not_empty():
    assert CASES, "regression corpus went missing"


@pytest.mark.parametrize("path", CASES, ids=lambda p: p.stem)
def test_corpus_case_verifies(path):
    graph, _bindings, _meta = load_case(path)
    verify(graph)


@pytest.mark.parametrize("path", CASES, ids=lambda p: p.stem)
def test_corpus_case_passes_differential_check(path):
    graph, bindings, meta = load_case(path)
    oracle = DifferentialOracle()
    result = oracle.check_case(graph, bindings,
                               input_seed=int(meta.get("input_seed", 0)))
    assert result.ok, (
        f"{path.name} regressed ({meta.get('note', '')}): "
        + "; ".join(str(f) for f in result.failures))


@pytest.mark.parametrize("path", CASES, ids=lambda p: p.stem)
def test_corpus_case_has_triage_note(path):
    _graph, _bindings, meta = load_case(path)
    assert meta.get("note"), "every corpus case must say why it exists"


# ---------------------------------------------------------------------------
# lint replay: the collect-all analyzers over every corpus case
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("path", CASES, ids=lambda p: p.stem)
def test_corpus_case_lints_clean(path):
    """Every corpus case reports exactly the codes its metadata expects.

    ``verify`` raising on the first defect used to be a blind spot: a case
    exercising several broken invariants only ever pinned the first one.
    The lint replay closes it — the full diagnostic set is compared, so a
    case is a regression both when an expected code disappears *and* when
    a new one appears.  Most cases expect the empty set (they are fixed
    bugs); a case may declare ``expected_lint`` in its metadata.
    """
    from repro.lint import lint_graph

    graph, _bindings, meta = load_case(path)
    sink = lint_graph(graph, assume_ranges=meta.get("assume_ranges"))
    expected = set(meta.get("expected_lint", []))
    assert sink.codes() == expected, (
        f"{path.name}: lint codes {sorted(sink.codes())} != expected "
        f"{sorted(expected)}:\n{sink.render()}")


# ---------------------------------------------------------------------------
# serving replay: compile-failure -> interpreter-quarantine, forever
# ---------------------------------------------------------------------------

SERVING_CASES = [p for p in CASES
                 if load_case(p)[2].get("serving_fault")]


def test_serving_quarantine_case_is_checked_in():
    assert SERVING_CASES, "the serving quarantine corpus case went missing"


@pytest.mark.parametrize("path", SERVING_CASES, ids=lambda p: p.stem)
def test_serving_quarantine_path_replays(path):
    """A permanently failing compile degrades to the fallback, never to
    an error — and quarantine means the pool stops trying.

    The case is hand-minimized to a transpose→matmul pair: the layout-
    sensitive core where a careless fallback diverges bitwise from the
    compiled engine.
    """
    from repro.core import compile_graph
    from repro.device import A10
    from repro.fuzz import CompileFaultInjector, make_inputs
    from repro.runtime import ExecutionEngine
    from repro.serving import (CompileState, ServingEngine, ServingOptions,
                               SignatureCompileCost, VirtualScheduler)

    graph, bindings, meta = load_case(path)
    assert meta["serving_fault"] == "permanent"
    inputs = make_inputs(graph, bindings,
                         seed=int(meta.get("input_seed", 0)))
    executable = compile_graph(graph)
    expected, _ = ExecutionEngine(executable, A10).run(inputs)

    scheduler = VirtualScheduler(seed=0)
    serving = ServingEngine(
        A10, scheduler,
        ServingOptions(compile_cost=SignatureCompileCost(
            fixed_us=1_000.0, per_kernel_us=10.0)),
        compile_fault=CompileFaultInjector(permanent=True))
    serving.register_model("case", executable)
    cold = serving.submit("case", inputs)
    scheduler.run_until_idle()
    pinned = serving.submit("case", inputs)
    scheduler.run_until_idle()

    assert cold.response.ok and cold.response.path == "fallback"
    assert pinned.response.ok and pinned.response.path == "quarantined"
    assert serving.compile_state(
        "case", cold.request.signature) is CompileState.QUARANTINED
    assert serving.pool.stats.jobs_submitted == 1, \
        "quarantine must stop recompilation"
    for response in (cold.response, pinned.response):
        for exp, got in zip(expected, response.outputs):
            assert exp.dtype == got.dtype and exp.shape == got.shape
            assert exp.tobytes() == got.tobytes(), \
                "fallback output not bit-identical to the engine"


def test_multi_defect_graph_reports_all_codes_not_just_the_first():
    """The fail-fast blind spot itself, replayed on a corpus graph.

    Seed three independent defects into one corpus graph; ``verify``
    stops at one of them, the linter must surface all three.
    """
    from repro.ir import f64
    from repro.lint import lint_graph

    for path in CASES:
        graph, _bindings, _meta = load_case(path)
        compute = [n for n in graph.nodes
                   if n.op not in ("parameter", "constant")]
        if len(compute) >= 3:
            break
    compute[0].shape = tuple(99 for _ in compute[0].shape)   # L006 (+L101)
    compute[1].dtype = f64                                   # L006
    compute[2].id = compute[1].id                            # L010
    sink = lint_graph(graph)
    assert {"L006", "L010"} <= sink.codes()
    assert len(sink.by_code("L006")) >= 2, (
        "independent defects must not mask each other:\n" + sink.render())

    with pytest.raises(Exception):
        verify(graph)  # the fail-fast gate sees (at most) one of them


# ---------------------------------------------------------------------------
# batching replay: pad-compatible members batch bit-identically; a faulty
# batched plan quarantines the bucket to solo service
# ---------------------------------------------------------------------------

BATCHING_CASES = [p for p in CASES
                  if load_case(p)[2].get("batching_fault")]


def test_batching_corpus_case_is_checked_in():
    assert BATCHING_CASES, "the batching corpus case went missing"


@pytest.mark.parametrize("path", BATCHING_CASES, ids=lambda p: p.stem)
def test_batched_members_replay_bit_identically(path):
    """Two pad-compatible members (m=3 and m=4 co-bucket at ceiling 4)
    must serve from one batched launch plan with outputs bit-identical
    to direct solo engine runs — softmax over the padded rows makes any
    cross-member slot mixup corrupt visibly."""
    from repro.core import compile_graph
    from repro.device import A10
    from repro.fuzz import make_inputs
    from repro.runtime import ExecutionEngine
    from repro.serving import (BatchingOptions, BatchingServingEngine,
                               ServingOptions, SignatureCompileCost,
                               VirtualScheduler)

    graph, bindings, meta = load_case(path)
    seed = int(meta.get("input_seed", 0))
    small = make_inputs(graph, bindings, seed=seed)
    big = make_inputs(graph, {**bindings, "m": bindings["m"] + 1},
                      seed=seed + 1)
    executable = compile_graph(graph)
    expected = [ExecutionEngine(executable, A10).run(inp)[0]
                for inp in (small, big)]

    scheduler = VirtualScheduler(seed=0)
    serving = BatchingServingEngine(
        A10, scheduler,
        ServingOptions(compile_cost=SignatureCompileCost(
            fixed_us=1_000.0, per_kernel_us=10.0)),
        batching=BatchingOptions(max_batch_size=2,
                                 max_queue_delay_us=500.0))
    entry = serving.register_model("case", executable)
    bucketer = serving.bucketer("case")
    sig = entry.engine.host_program.signature(small)
    assert bucketer.bucket_key(sig) == \
        bucketer.bucket_key(entry.engine.host_program.signature(big))
    entry.engine.prepare_batched(bucketer.padded_signature(sig), 2)

    tickets = [serving.submit("case", small), serving.submit("case", big)]
    scheduler.run_until_idle()
    for ticket, exp in zip(tickets, expected):
        response = ticket.response
        assert response.ok and response.path == "batched"
        assert response.stats.details["batch"]["size"] == 2
        for ref, got in zip(exp, response.outputs):
            assert ref.dtype == got.dtype and ref.shape == got.shape
            assert ref.tobytes() == got.tobytes(), \
                "batched output not bit-identical to the solo engine"


@pytest.mark.parametrize("path", BATCHING_CASES, ids=lambda p: p.stem)
def test_faulty_batched_plan_quarantines_bucket_to_solo(path):
    """A permanent compile fault on the *batched* plan key (solo
    compiles succeed — the fault only fires for signatures carrying the
    extra leading batch dim) must pin the bucket to solo service: no
    batched response ever, no error ever."""
    from repro.core import compile_graph
    from repro.device import A10
    from repro.fuzz import make_inputs
    from repro.runtime import ExecutionEngine
    from repro.serving import (BatchingOptions, BatchingServingEngine,
                               PermanentCompileError, ServingOptions,
                               SignatureCompileCost, VirtualScheduler)

    graph, bindings, meta = load_case(path)
    assert meta["batching_fault"] == "permanent"
    seed = int(meta.get("input_seed", 0))
    inputs = make_inputs(graph, bindings, seed=seed)
    executable = compile_graph(graph)
    expected, _ = ExecutionEngine(executable, A10).run(inputs)
    param_rank = len(executable.graph.params[0].shape)

    def batched_only_fault(model, signature, attempt):
        if len(signature[0][1]) == param_rank + 1:
            raise PermanentCompileError("injected batched-plan fault")

    scheduler = VirtualScheduler(seed=0)
    serving = BatchingServingEngine(
        A10, scheduler,
        ServingOptions(compile_cost=SignatureCompileCost(
            fixed_us=1_000.0, per_kernel_us=10.0)),
        batching=BatchingOptions(max_batch_size=2,
                                 max_queue_delay_us=500.0),
        compile_fault=batched_only_fault)
    serving.register_model("case", executable)

    waves = []
    for start in (0.0, 1e8, 2e8):
        scheduler.call_at(start, lambda: waves.append(
            [serving.submit("case", inputs) for _ in range(2)]))
    scheduler.run_until_idle()

    assert serving.counters["batched_served"] == 0, \
        "quarantined batched key must pin the bucket to solo service"
    assert serving.counters["batches_exploded"] >= 2
    for wave in waves:
        for ticket in wave:
            response = ticket.response
            assert response.ok and response.path != "batched"
            for ref, got in zip(expected, response.outputs):
                assert ref.tobytes() == got.tobytes()


# ---------------------------------------------------------------------------
# fleet replay: a permanent fault quarantines ONE replica, never the fleet
# ---------------------------------------------------------------------------

FLEET_CASES = [p for p in CASES
               if load_case(p)[2].get("fleet_fault")]


def test_fleet_quarantine_case_is_checked_in():
    assert FLEET_CASES, "the fleet replica-quarantine corpus case went missing"


@pytest.mark.parametrize("path", FLEET_CASES, ids=lambda p: p.stem)
def test_fleet_quarantine_stays_on_the_faulted_replica(path):
    """A permanently failing compile on one replica pins *that replica*
    to its interpreter fallback; its peer compiles normally and serves
    the fast path, and draining the faulted replica hands its traffic
    over without losing or double-serving a request.  Every response —
    quarantined, fallback or fast, before or after the drain — is
    bit-identical to a direct engine run."""
    from repro.core import compile_graph
    from repro.device import A10
    from repro.fuzz import CompileFaultInjector, make_inputs
    from repro.runtime import ExecutionEngine
    from repro.serving import (FleetEngine, FleetOptions, ReplicaState,
                               ServingOptions, SignatureCompileCost,
                               VirtualScheduler)

    graph, bindings, meta = load_case(path)
    assert meta["fleet_fault"] == "permanent"
    inputs = make_inputs(graph, bindings,
                         seed=int(meta.get("input_seed", 0)))
    executable = compile_graph(graph)
    expected, _ = ExecutionEngine(executable, A10).run(inputs)

    scheduler = VirtualScheduler(seed=0)
    fleet = FleetEngine(
        A10, scheduler,
        FleetOptions(
            replicas=2, policy="round_robin",
            serving=ServingOptions(compile_cost=SignatureCompileCost(
                fixed_us=1_000.0, per_kernel_us=10.0))),
        compile_fault_factory=lambda uid: (
            CompileFaultInjector(permanent=True) if uid == 0 else None))
    fleet.register_model("case", executable)

    tickets = []
    for start in (0.0, 1e8):           # cold burst, then warm revisit
        scheduler.call_at(start, lambda: tickets.extend(
            fleet.submit("case", inputs) for _ in range(2)))
    scheduler.call_at(2e8, lambda: fleet.drain("r0", reason="faulted"))
    scheduler.call_at(3e8, lambda: tickets.extend(
        fleet.submit("case", inputs) for _ in range(2)))
    scheduler.run_until_idle()

    r0, r1 = fleet.replica("r0"), fleet.replica("r1")
    sig = tickets[0].request.signature
    assert ("case", sig) in r0.engine._quarantined, \
        "the faulted replica must quarantine the signature"
    assert not r1.engine._quarantined, \
        "quarantine leaked to a healthy replica"
    assert r0.engine.pool.stats.jobs_submitted == 1, \
        "quarantine must stop recompilation on the faulted replica"
    assert r0.state is ReplicaState.RETIRED and r0.outstanding() == 0
    assert [t.replica for t in tickets[4:]] == ["r1", "r1"], \
        "post-drain traffic must route around the retired replica"

    paths = {name: set() for name in ("r0", "r1")}
    assert len(tickets) == 6
    assert fleet.counters["routed"] == 6
    assert sum(r.engine.counters["ok"]
               for r in fleet.replicas() + fleet.retired) == 6, \
        "a request was lost or double-served across the drain"
    for ticket in tickets:
        response = ticket.response
        assert response.ok
        paths[ticket.replica].add(response.path)
        for ref, got in zip(expected, response.outputs):
            assert ref.dtype == got.dtype and ref.shape == got.shape
            assert ref.tobytes() == got.tobytes(), \
                f"replica {ticket.replica} path {response.path} " \
                "diverged from the direct engine run"
    assert "fast" not in paths["r0"], \
        "the permanently faulted replica can never serve a compiled plan"
    assert "fast" in paths["r1"], \
        "the healthy replica must recover to the fast path"


# ---------------------------------------------------------------------------
# tuning replay: tuner fault -> quarantined search, heuristic plan, OK
# ---------------------------------------------------------------------------

TUNING_CASES = [p for p in CASES
                if load_case(p)[2].get("tuning_fault")]


def test_tuning_fault_case_is_checked_in():
    assert TUNING_CASES, "the tuner-fault corpus case went missing"


@pytest.mark.parametrize("path", TUNING_CASES, ids=lambda p: p.stem)
def test_tuner_fault_quarantines_search_not_service(path):
    """A tuner fault during background compile must cost performance
    only: the compile completes, a heuristic (untuned) plan serves the
    fast path, every response is OK and bit-identical, and the search
    is quarantined per-key — a healthy tuner on a fresh engine still
    tunes the same signature."""
    from repro.core import compile_graph
    from repro.device import A10
    from repro.fuzz import TunerFaultInjector, make_inputs
    from repro.runtime import ExecutionEngine
    from repro.serving import (ServingEngine, ServingOptions,
                               SignatureCompileCost, VirtualScheduler)
    from repro.tuning import TuningOptions

    graph, bindings, meta = load_case(path)
    assert meta["tuning_fault"] == "injected"
    inputs = make_inputs(graph, bindings,
                         seed=int(meta.get("input_seed", 0)))
    executable = compile_graph(graph)
    expected, _ = ExecutionEngine(executable, A10).run(inputs)

    def make_serving(tuning_fault):
        scheduler = VirtualScheduler(seed=0)
        serving = ServingEngine(
            A10, scheduler,
            ServingOptions(
                compile_cost=SignatureCompileCost(
                    fixed_us=1_000.0, per_kernel_us=10.0),
                tuning=TuningOptions(budget_us=250_000.0)),
            tuning_fault=tuning_fault)
        serving.register_model("case", executable)
        return scheduler, serving

    fault = TunerFaultInjector(fault_signatures=1)
    scheduler, serving = make_serving(fault)
    cold = serving.submit("case", inputs)
    scheduler.run_until_idle()
    warm = serving.submit("case", inputs)
    scheduler.run_until_idle()

    assert fault.calls, "the injected tuner fault never fired"
    assert serving.counters["tuning_faults"] == 1
    assert serving.counters["tuned_signatures"] == 0
    assert serving.counters["tuned_served"] == 0
    assert cold.response.ok and cold.response.path == "fallback"
    assert warm.response.ok and warm.response.path == "fast"
    sig = cold.request.signature
    assert ("case", sig) in serving.tuning_quarantined_signatures()
    plan = serving.model("case").engine.peek_plan(sig)
    assert plan is not None and not plan.tuned, \
        "tuner fault must install an untuned heuristic plan"
    for response in (cold.response, warm.response):
        for ref, got in zip(expected, response.outputs):
            assert ref.dtype == got.dtype and ref.shape == got.shape
            assert ref.tobytes() == got.tobytes(), \
                "response under a tuner fault diverged from the engine"

    # The quarantine is per-key, not a property of the signature: the
    # same case on a healthy engine tunes and serves tuned, still
    # bit-identical.
    scheduler, healthy = make_serving(None)
    healthy.submit("case", inputs)
    scheduler.run_until_idle()
    tuned = healthy.submit("case", inputs)
    scheduler.run_until_idle()
    assert healthy.counters["tuned_signatures"] == 1
    assert tuned.response.ok and tuned.response.path == "fast"
    assert healthy.counters["tuned_served"] == 1
    for ref, got in zip(expected, tuned.response.outputs):
        assert ref.tobytes() == got.tobytes(), \
            "tuned response not bit-identical to the heuristic engine"


# ---------------------------------------------------------------------------
# obs replay: pinned engine-level trace (record -> replay taxonomy)
# ---------------------------------------------------------------------------

OBS_CASES = [p for p in CASES
             if load_case(p)[2].get("expected_trace")]


def test_obs_trace_case_is_checked_in():
    assert OBS_CASES, "the obs expected-trace corpus case went missing"


@pytest.mark.parametrize("path", OBS_CASES, ids=lambda p: p.stem)
def test_expected_trace_replays_exactly(path):
    """The span/event sequence of a record->replay pair is part of the
    case's contract: a renamed span, a dropped cache event or a changed
    kernel decomposition on this pinned graph is a regression the
    numeric outputs alone would never catch."""
    from repro.core import compile_graph
    from repro.device import A10
    from repro.fuzz import make_inputs
    from repro.obs import CapturingTracer, trace_failures
    from repro.runtime import ExecutionEngine

    graph, bindings, meta = load_case(path)
    inputs = make_inputs(graph, bindings,
                         seed=int(meta.get("input_seed", 0)))
    tracer = CapturingTracer()
    engine = ExecutionEngine(compile_graph(graph), A10, tracer=tracer)
    engine.run(inputs)
    engine.run(inputs)
    assert tracer.sequence() == meta["expected_trace"], (
        f"{path.name}: trace drifted from the pinned sequence "
        f"({meta.get('expected_trace_scope', '')})")
    assert trace_failures(tracer, pass_names=[]) == []


# ---------------------------------------------------------------------------
# interval replay: one exhibit per L6xx analyzer
# ---------------------------------------------------------------------------

INTERVAL_CASES = {load_case(p)[2].get("interval_code"): p
                  for p in CASES if load_case(p)[2].get("interval_code")}


def test_every_interval_code_has_an_exhibit():
    assert set(INTERVAL_CASES) == {"L601", "L602", "L603", "L604", "L605"}, \
        "an L6xx corpus exhibit went missing"


def test_l601_exhibit_contradiction_comes_from_meta_bounds():
    """The graph itself is clean; the checked-in deployment bounds are
    the defect.  Without them the case must lint empty."""
    from repro.lint import lint_graph

    graph, _bindings, meta = load_case(INTERVAL_CASES["L601"])
    assert not lint_graph(graph).codes()
    sink = lint_graph(graph, assume_ranges=meta["assume_ranges"])
    assert sink.codes() == {"L601"}


def test_l602_exhibit_slot_alias_is_caught_symbolically():
    """Compile the diamond, alias its two simultaneously-live symbolic
    buffers, and the audit must prove the overlap unsound for every
    shape in the class — not merely structurally suspicious (L301)."""
    from repro.core import compile_graph
    from repro.core.symbolic.intervals import derive_intervals
    from repro.lint import check_buffer_plan

    graph, _bindings, _meta = load_case(INTERVAL_CASES["L602"])
    executable = compile_graph(graph)
    plan = executable.buffer_plan
    assert not check_buffer_plan(plan), "planner emitted an unsound plan"
    live = sorted(plan.intervals, key=lambda iv: (iv.start, iv.node_id))
    victims = [iv for iv in live
               if any(o is not iv and o.slot != iv.slot
                      and o.start < iv.end and iv.start < o.end
                      for o in live)]
    assert len(victims) >= 2, "exhibit lost its overlapping lifetimes"
    other = next(o for o in victims if o is not victims[0]
                 and o.slot != victims[0].slot)
    other.slot = victims[0].slot
    sink = check_buffer_plan(plan,
                             imap=derive_intervals(executable.graph))
    assert {"L301", "L602"} <= sink.codes()
    assert "every shape" in sink.by_code("L602")[0].message


def test_l603_exhibit_phantom_symbol_breaks_plan_coverage():
    """The checked-in reshape target is derivable; replacing it with a
    phantom symbol must flag the launch plan as unsound for the class."""
    from repro.core.symbolic.intervals import derive_intervals
    from repro.ir.shapes import SymDim
    from repro.lint import check_plan_coverage

    graph, _bindings, _meta = load_case(INTERVAL_CASES["L603"])
    imap = derive_intervals(graph)
    assert not check_plan_coverage(graph, imap), "clean exhibit regressed"
    reshape = next(n for n in graph.nodes if n.op == "reshape")
    phantom = SymDim("phantom")
    reshape.attrs["new_shape"] = tuple(
        phantom if isinstance(d, SymDim) else d
        for d in reshape.attrs["new_shape"])
    reshape.shape = tuple(
        phantom if isinstance(d, SymDim) else d for d in reshape.shape)
    sink = check_plan_coverage(graph, derive_intervals(graph))
    assert sink.codes() == {"L603"}
    assert "phantom" in sink.by_code("L603")[0].message


def test_l604_exhibit_broken_ceilings_fail_the_padding_audit():
    from repro.core.symbolic.intervals import derive_intervals
    from repro.lint import check_bucket_padding
    from repro.serving.batching import ShapeBucketer

    graph, _bindings, _meta = load_case(INTERVAL_CASES["L604"])
    imap = derive_intervals(graph, assume_ranges={"s": (1, 12)})
    stock = ShapeBucketer(graph, graph.params)
    assert not check_bucket_padding(stock, imap), "stock bucketer flagged"

    class Truncating(ShapeBucketer):
        def ceiling(self, value):
            return min(super().ceiling(value), 8)

    class Wasteful(ShapeBucketer):
        def ceiling(self, value):
            return 4096

    for broken in (Truncating, Wasteful):
        sink = check_bucket_padding(broken(graph, graph.params), imap)
        assert sink.codes() == {"L604"}, broken.__name__


def test_l605_exhibit_fires_and_still_executes():
    """The L605 exhibit is a *live* warning: the division fallback admits
    a zero extent statically, yet every checked-in binding executes —
    warning severity, not error, is the contract."""
    from repro.core.symbolic.intervals import check_dynamic_bindings
    from repro.lint import LintLevel, lint_graph

    graph, bindings, meta = load_case(INTERVAL_CASES["L605"])
    assert meta["expected_lint"] == ["L605"]
    sink = lint_graph(graph)
    assert sink.codes() == {"L605"}
    assert sink.ok(LintLevel.DEFAULT) and not sink.ok(LintLevel.STRICT)
    assert check_dynamic_bindings(graph, bindings) == []


# ---------------------------------------------------------------------------
# symplan replay: the class-wide reuse proof and its fuzz-oracle leg
# ---------------------------------------------------------------------------

MEMPLAN_CASES = [p for p in CASES
                 if load_case(p)[2].get("memplan_fault")]


def test_memplan_exhibit_exists():
    assert MEMPLAN_CASES, "the symplan corpus exhibit went missing"


@pytest.mark.parametrize("path", MEMPLAN_CASES, ids=lambda p: p.stem)
def test_memplan_exhibit_passes_the_memplan_oracle(path):
    """Untampered, the exhibit sails through the full MEMPLAN leg."""
    from repro.fuzz.oracle import MEMPLAN_EXECUTOR

    graph, bindings, meta = load_case(path)
    oracle = DifferentialOracle(memplan=True)
    result = oracle.check_case(graph, bindings,
                               input_seed=int(meta.get("input_seed", 0)))
    assert MEMPLAN_EXECUTOR in result.executors_checked
    assert result.ok, "; ".join(str(f) for f in result.failures)


@pytest.mark.parametrize("path", MEMPLAN_CASES, ids=lambda p: p.stem)
def test_memplan_exhibit_tampered_slot_fails_every_judge(path):
    """Alias the diamond's two simultaneously-live buffers into one slot:
    the plan's own proof, the independent L602 analyzer, and the
    ground-truth memory oracle must all refute the plan — and agree."""
    from repro.core import compile_graph
    from repro.fuzz import make_inputs
    from repro.lint import check_memory_symbolic
    from repro.numerics.resolve import bind_inputs
    from repro.runtime import measure_peak_bytes, plan_symbolic

    graph, bindings, _meta = load_case(path)
    executable = compile_graph(graph)
    symbolic = executable.symbolic_plan
    assert symbolic.verify_sound() == [], "clean exhibit regressed"

    plan = executable.buffer_plan
    live = sorted(plan.intervals, key=lambda iv: (iv.start, iv.node_id))
    victim = next(iv for iv in live
                  if any(o is not iv and o.slot != iv.slot
                         and o.start < iv.end and iv.start < o.end
                         for o in live))
    other = next(o for o in live if o is not victim
                 and o.slot != victim.slot
                 and o.start < victim.end and victim.start < o.end)
    other.slot = victim.slot

    # Judge 1: the plan's own aliasing proof.
    violations = symbolic.verify_sound()
    assert violations and "aliases" in violations[0]
    # Judge 2: the independent L602 analyzer, in agreement.
    sink = check_memory_symbolic(plan, symbolic.imap)
    assert "L602" in sink.codes()
    assert bool(violations) == bool(sink.by_code("L602"))
    # Judge 3: ground truth — the aliased plan now charges fewer bytes
    # than the program provably holds live.
    inputs = make_inputs(graph, bindings, seed=0)
    tampered = plan_symbolic(plan, executable.graph)
    dims = bind_inputs(executable.host_program.params, inputs)
    executable.host_program.resolution.run(dims)
    measured = measure_peak_bytes(executable, inputs)
    assert tampered.peak_at(dims) < measured["measured_peak_bytes"]
