"""Bounded deterministic fuzz campaign as a regression gate.

Marked ``fuzz`` so the default tier-1 run stays fast; CI runs it
explicitly (``-m fuzz``).  25 iterations with seed 0 is the same prefix
the full acceptance campaign (``--seed 0 --iters 200``) starts with.
"""

import pytest

from repro.fuzz import DifferentialOracle, run_campaign

pytestmark = pytest.mark.fuzz


def test_bounded_campaign_seed0_is_clean(tmp_path):
    report = run_campaign(seed=0, iters=25, out_dir=tmp_path)
    assert report.ok, report.summary()
    assert report.cases_run == 25
    # every executor participates in every campaign
    assert len(report.executors) == 8
    # the generator's op mix shows up even in a short run
    assert len(report.ops_covered) >= 15


def test_bounded_serving_campaign_seed0_is_clean(tmp_path):
    """The serving oracle rides the same campaign: every case replayed
    through the runtime (seeded scheduler, injected compile faults) with
    bit-identical OK responses demanded throughout."""
    report = run_campaign(seed=0, iters=15, out_dir=tmp_path,
                          oracle=DifferentialOracle(serving=True))
    assert report.ok, report.summary()
    assert "SERVING" in report.executors


def test_bounded_batching_campaign_seed0_is_clean(tmp_path):
    """The batching oracle rides the same campaign: every case replayed
    through the dynamic-batching engine (cold burst explodes to solo
    fallbacks, warm burst serves from one batched launch, a lone late
    request flushes solo) with compile faults injected against the
    batched plan key — every response bit-identical and OK, permanent
    faults quarantining the batched key to solo service."""
    report = run_campaign(seed=0, iters=15, out_dir=tmp_path,
                          oracle=DifferentialOracle(batching=True))
    assert report.ok, report.summary()
    assert "BATCHING" in report.executors


def test_bounded_fleet_campaign_seed0_is_clean(tmp_path):
    """The fleet oracle rides the same campaign: every case driven
    through a multi-replica fleet (policy and replica count varied by
    seed, per-replica compile/tuner fault schedules, one replica drained
    mid-stream) — no request lost or double-served across the
    scale-down, quarantine pinned to the faulted replica, every response
    OK and bit-identical to a direct engine run."""
    report = run_campaign(seed=0, iters=10, out_dir=tmp_path,
                          oracle=DifferentialOracle(fleet=True))
    assert report.ok, report.summary()
    assert "FLEET" in report.executors


def test_bounded_obs_campaign_seed0_is_clean(tmp_path):
    """The trace oracle rides the same campaign: every case recompiled
    and re-run under a CapturingTracer with bit-identical outputs/stats
    demanded against the untraced engine, plus the trace invariants
    (balance, containment, pass coverage, kernel accounting)."""
    report = run_campaign(seed=0, iters=10, out_dir=tmp_path,
                          oracle=DifferentialOracle(obs=True))
    assert report.ok, report.summary()
    assert "OBS" in report.executors

def test_bounded_memplan_campaign_seed0_is_clean(tmp_path):
    """The symbolic-memory oracle rides the same campaign: every case's
    class-wide plan must price the binding exactly like the concrete
    plan, stay inside the class peak interval, dominate the ground-truth
    measured peak, carry a clean aliasing proof that the independent
    L602 analyzer agrees with, and survive a peak-aware-reorder
    recompile bit-identically."""
    report = run_campaign(seed=0, iters=15, out_dir=tmp_path,
                          oracle=DifferentialOracle(memplan=True))
    assert report.ok, report.summary()
    assert "MEMPLAN" in report.executors
