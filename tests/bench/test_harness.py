"""Harness internals: bench model configs, trace builders, CLI."""

import numpy as np
import pytest

from repro.bench import BENCH_MODELS, bench_queries
from repro.bench.experiments import _bench_model, _k_distinct_trace
from repro.models import MODEL_BUILDERS


def test_bench_models_cover_the_zoo():
    assert set(BENCH_MODELS) == set(MODEL_BUILDERS)


def test_bench_models_buildable():
    model = _bench_model("dien")
    assert model.name == "dien"


def test_bench_queries_env(monkeypatch):
    monkeypatch.delenv("REPRO_BENCH_QUERIES", raising=False)
    assert bench_queries(30) == 30
    monkeypatch.setenv("REPRO_BENCH_QUERIES", "7")
    assert bench_queries(30) == 7


def test_k_distinct_trace_counts():
    model = _bench_model("dien")
    for k in (1, 3, 5):
        trace = _k_distinct_trace(model, 20, k)
        assert len(trace) == 20
        assert trace.distinct_signatures() == k


def test_k_distinct_trace_cycles_deterministically():
    model = _bench_model("dien")
    trace = _k_distinct_trace(model, 8, 2)
    values = trace.axis_values
    assert values[0] == values[2] == values[4]
    assert values[1] == values[3]


def test_cli_runs_one_experiment(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_RESULTS_DIR", str(tmp_path))
    from repro.bench.__main__ import main
    assert main(["e9", "--device", "A10"]) == 0
    assert (tmp_path / "e9_schedule_selection.txt").exists()


def test_cli_rejects_unknown(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_RESULTS_DIR", str(tmp_path))
    from repro.bench.__main__ import main
    with pytest.raises(SystemExit):
        main(["e99"])
