"""The serving-queue simulator."""

import numpy as np
import pytest

from repro.bench.serving import ServingResult, simulate_serving
from repro.device.counters import RunStats


class FakeExecutor:
    """Deterministic service times for queueing-math checks."""

    def __init__(self, service_us, compile_on=()):
        self.service_us = list(service_us)
        self.compile_on = set(compile_on)
        self.calls = 0

    def run(self, inputs):
        index = self.calls
        self.calls += 1
        stats = RunStats(device_time_us=self.service_us[index])
        if index in self.compile_on:
            stats.compile_time_us = 1e6
        return [], stats


def test_low_load_latency_equals_service():
    executor = FakeExecutor([100.0] * 20)
    result = simulate_serving(executor, [{}] * 20,
                              arrival_rate_qps=1.0, seed=0)
    # 1 qps with 100us service: queue always empty
    assert all(abs(lat - 100.0) < 1e-6 for lat in result.latencies_us)
    assert result.utilization < 0.01
    assert result.compile_stalls == 0


def test_overload_queues_grow():
    executor = FakeExecutor([1000.0] * 30)
    result = simulate_serving(executor, [{}] * 30,
                              arrival_rate_qps=5000.0, seed=0)
    # 5000 qps with 1ms service: heavy overload, latencies climb
    assert result.latencies_us[-1] > result.latencies_us[0]
    assert result.utilization > 0.9


def test_compile_stall_blocks_followers():
    executor = FakeExecutor([100.0] * 10, compile_on={3})
    result = simulate_serving(executor, [{}] * 10,
                              arrival_rate_qps=2000.0, seed=0)
    assert result.compile_stalls == 1
    # queries after the stall wait behind the 1s compile
    assert result.latencies_us[4] > 0.5e6
    assert result.p99_us > 100 * result.p50_us or \
        result.max_us > 1e6


def test_percentiles_ordered():
    executor = FakeExecutor(list(np.linspace(50, 500, 40)))
    result = simulate_serving(executor, [{}] * 40,
                              arrival_rate_qps=100.0, seed=1)
    assert result.p50_us <= result.p95_us <= result.p99_us \
        <= result.max_us


def test_throughput_bounded_by_arrivals():
    executor = FakeExecutor([10.0] * 50)
    result = simulate_serving(executor, [{}] * 50,
                              arrival_rate_qps=1000.0, seed=2)
    assert 0 < result.throughput_qps < 2000


def test_invalid_rate_rejected():
    with pytest.raises(ValueError):
        simulate_serving(FakeExecutor([1.0]), [{}], arrival_rate_qps=0)


def test_empty_result_safe():
    result = ServingResult()
    assert result.p99_us == 0.0
    assert result.throughput_qps == 0.0
    assert result.utilization == 0.0


def test_deterministic_given_seed():
    a = simulate_serving(FakeExecutor([100.0] * 10), [{}] * 10, 500.0,
                         seed=7)
    b = simulate_serving(FakeExecutor([100.0] * 10), [{}] * 10, 500.0,
                         seed=7)
    assert a.latencies_us == b.latencies_us
