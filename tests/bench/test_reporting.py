"""Experiment reporting utilities."""

import json

from repro.bench.reporting import (format_table, results_dir,
                                   save_results)


def test_format_table_alignment():
    text = format_table(["name", "value"],
                        [["a", 1.0], ["longer", 123456.789]],
                        title="My Table")
    lines = text.splitlines()
    assert lines[0] == "My Table"
    assert "name" in lines[1] and "value" in lines[1]
    assert set(lines[2]) <= {"-", " "}
    assert "123,457" in text  # thousands formatting
    assert "1.00" in text


def test_format_table_float_precision():
    text = format_table(["v"], [[0.1234], [12.34], [1234.5], [0]])
    assert "0.12" in text
    assert "12.3" in text
    assert "1,234" in text or "1,235" in text
    assert "\n0" in text  # zero renders bare


def test_save_results_writes_json_and_text(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_RESULTS_DIR", str(tmp_path))
    payload = {"answer": 42, "rows": [{"a": 1}]}
    path = save_results("unit_test_result", payload, "table text")
    assert path.exists()
    with open(path) as f:
        assert json.load(f) == payload
    assert (tmp_path / "unit_test_result.txt").read_text() == \
        "table text\n"


def test_results_dir_env_override(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_RESULTS_DIR", str(tmp_path / "sub"))
    directory = results_dir()
    assert directory == tmp_path / "sub"
    assert directory.is_dir()
