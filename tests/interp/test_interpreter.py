"""The reference interpreter."""

import numpy as np
import pytest

from repro.interp import Interpreter, evaluate
from repro.ir import GraphBuilder, f32, i64
from repro.numerics import BindingError

from ..conftest import toy_mlp_graph, toy_mlp_inputs


def test_evaluates_toy_mlp(rng):
    b = toy_mlp_graph()
    inputs = toy_mlp_inputs(rng, batch=2, seq=3)
    (out,) = evaluate(b.graph, inputs)
    assert out.shape == (2, 3, 16)
    assert np.allclose(out.sum(axis=-1), 1.0, atol=1e-5)


def test_same_graph_many_shapes(rng):
    b = toy_mlp_graph()
    for batch, seq in [(1, 1), (2, 9), (5, 4)]:
        inputs = toy_mlp_inputs(rng, batch, seq)
        (out,) = evaluate(b.graph, inputs)
        assert out.shape == (batch, seq, 16)


def test_gather_embedding(rng):
    b = GraphBuilder("emb")
    s = b.sym("s")
    table = b.parameter("table", (10, 4), f32)
    ids = b.parameter("ids", (s,), i64)
    b.outputs(b.gather(table, ids))
    table_v = rng.normal(size=(10, 4)).astype(np.float32)
    ids_v = np.asarray([3, 3, 9], dtype=np.int64)
    (out,) = evaluate(b.graph, {"table": table_v, "ids": ids_v})
    assert np.allclose(out, table_v[ids_v])


def test_multiple_outputs(rng):
    b = GraphBuilder("two")
    x = b.parameter("x", (4,), f32)
    b.outputs(b.relu(x), b.neg(x))
    xv = rng.normal(size=(4,)).astype(np.float32)
    relu_out, neg_out = evaluate(b.graph, {"x": xv})
    assert np.allclose(relu_out, np.maximum(xv, 0))
    assert np.allclose(neg_out, -xv)


def test_rejects_wrong_static_shape():
    b = GraphBuilder("g")
    b.parameter("x", (4,), f32)
    b.outputs(b.graph.params[0])
    with pytest.raises(BindingError):
        evaluate(b.graph, {"x": np.zeros((5,), dtype=np.float32)})


def test_rejects_inconsistent_symbol(rng):
    b = GraphBuilder("g")
    s = b.sym("s")
    x = b.parameter("x", (s,), f32)
    y = b.parameter("y", (s,), f32)
    b.outputs(b.add(x, y))
    with pytest.raises(BindingError):
        evaluate(b.graph, {"x": np.zeros(3, np.float32),
                           "y": np.zeros(4, np.float32)})


def test_output_dtype_enforced(rng):
    b = GraphBuilder("g")
    x = b.parameter("x", (3,), f32)
    b.outputs(b.cast(x, i64))
    (out,) = evaluate(b.graph, {"x": np.ones(3, np.float32)})
    assert out.dtype == np.int64


def test_interpreter_reusable(rng):
    b = toy_mlp_graph()
    interp = Interpreter(b.graph)
    for batch in (1, 2, 3):
        inputs = toy_mlp_inputs(rng, batch, 4)
        (out,) = interp.run(inputs)
        assert out.shape == (batch, 4, 16)
