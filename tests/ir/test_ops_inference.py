"""Per-op symbolic shape/dtype inference, including rejection cases."""

import numpy as np
import pytest

from repro.ir import (GraphBuilder, InferenceError, boolean, f32, i64)


@pytest.fixture
def b():
    return GraphBuilder("t")


def test_parameter_shape_dtype(b):
    s = b.sym("s")
    x = b.parameter("x", (s, 4), f32)
    assert x.shape == (s, 4)
    assert x.dtype is f32


def test_constant_infers_from_array(b):
    c = b.constant(np.zeros((2, 3), dtype=np.int64))
    assert c.shape == (2, 3)
    assert c.dtype is i64


def test_unary_preserves(b):
    s = b.sym("s")
    x = b.parameter("x", (s, 8), f32)
    assert b.exp(x).shape == (s, 8)
    assert b.relu(x).dtype is f32


def test_binary_requires_structural_match(b):
    x = b.parameter("x", (4, 8), f32)
    y = b.parameter("y", (4, 8), f32)
    z = b.parameter("z", (8, 4), f32)
    assert b.add(x, y).shape == (4, 8)
    with pytest.raises((InferenceError, ValueError)):
        b.graph.add("add", (x, z))


def test_binary_symbolic_same_symbol_ok(b):
    s = b.sym("s")
    x = b.parameter("x", (s, 8), f32)
    y = b.parameter("y", (s, 8), f32)
    assert b.add(x, y).shape == (s, 8)


def test_binary_different_symbols_rejected_without_broadcast(b):
    x = b.parameter("x", (b.sym("s1"), 8), f32)
    y = b.parameter("y", (b.sym("s2"), 8), f32)
    with pytest.raises((InferenceError, ValueError)):
        b.graph.add("add", (x, y))


def test_compare_yields_bool(b):
    x = b.parameter("x", (4,), f32)
    y = b.parameter("y", (4,), f32)
    assert b.lt(x, y).dtype is boolean


def test_select_checks_pred_dtype(b):
    x = b.parameter("x", (4,), f32)
    y = b.parameter("y", (4,), f32)
    with pytest.raises(InferenceError):
        b.graph.add("select", (x, x, y))


def test_broadcast_in_dim(b):
    s = b.sym("s")
    v = b.parameter("v", (8,), f32)
    out = b.broadcast_in_dim(v, (s, 8), (1,))
    assert out.shape == (s, 8)


def test_broadcast_in_dim_rejects_bad_mapping(b):
    v = b.parameter("v", (8,), f32)
    with pytest.raises(InferenceError):
        b.broadcast_in_dim(v, (4, 16), (1,))  # 8 -> 16 illegal
    with pytest.raises(InferenceError):
        b.broadcast_in_dim(v, (8, 4), (2,))  # out of range


def test_reshape_static_count_checked(b):
    x = b.parameter("x", (4, 6), f32)
    assert b.reshape(x, (24,)).shape == (24,)
    with pytest.raises(InferenceError):
        b.reshape(x, (25,))


def test_reshape_symbolic_accepted(b):
    s = b.sym("s")
    x = b.parameter("x", (s, 6), f32)
    out = b.reshape(x, (b.sym("t"), 2))
    assert len(out.shape) == 2


def test_transpose(b):
    s = b.sym("s")
    x = b.parameter("x", (s, 4, 8), f32)
    assert b.transpose(x, (2, 0, 1)).shape == (8, s, 4)
    with pytest.raises(InferenceError):
        b.transpose(x, (0, 0, 1))


def test_slice_static(b):
    x = b.parameter("x", (10, 4), f32)
    out = b.slice(x, (2, 0), (8, 4), (2, 1))
    assert out.shape == (3, 4)


def test_slice_symbolic_full_dim_only(b):
    s = b.sym("s")
    x = b.parameter("x", (s, 4), f32)
    assert b.slice(x, (0, 1), (s, 3)).shape == (s, 2)
    with pytest.raises(InferenceError):
        b.slice(x, (1, 0), (s, 4))


def test_concat_static_axis(b):
    x = b.parameter("x", (2, 3), f32)
    y = b.parameter("y", (2, 5), f32)
    assert b.concat([x, y], axis=1).shape == (2, 8)


def test_concat_symbolic_axis_mints_symbol(b):
    s1, s2 = b.sym("s1"), b.sym("s2")
    x = b.parameter("x", (s1, 3), f32)
    y = b.parameter("y", (s2, 3), f32)
    out = b.concat([x, y], axis=0)
    assert out.shape[1] == 3
    assert out.shape[0] not in (s1, s2)


def test_concat_rejects_mismatched_other_dims(b):
    x = b.parameter("x", (2, 3), f32)
    y = b.parameter("y", (3, 3), f32)
    with pytest.raises(InferenceError):
        b.concat([x, y], axis=1)


def test_gather(b):
    s = b.sym("s")
    table = b.parameter("t", (100, 16), f32)
    idx = b.parameter("i", (s, 7), i64)
    assert b.gather(table, idx, axis=0).shape == (s, 7, 16)


def test_gather_rejects_float_indices(b):
    table = b.parameter("t", (100, 16), f32)
    idx = b.parameter("i", (4,), f32)
    with pytest.raises(InferenceError):
        b.gather(table, idx)


def test_reduce_shapes(b):
    s = b.sym("s")
    x = b.parameter("x", (s, 4, 8), f32)
    assert b.reduce_sum(x, axes=2).shape == (s, 4)
    assert b.reduce_max(x, axes=2, keepdims=True).shape == (s, 4, 1)
    assert b.reduce_mean(x, axes=(1, 2)).shape == (s,)


def test_reduce_rejects_bad_axes(b):
    x = b.parameter("x", (4, 8), f32)
    with pytest.raises(InferenceError):
        b.graph.add("reduce", (x,), {"kind": "sum", "axes": (5,)})
    with pytest.raises(InferenceError):
        b.graph.add("reduce", (x,), {"kind": "sum", "axes": (0, 0)})
    with pytest.raises(InferenceError):
        b.graph.add("reduce", (x,), {"kind": "wat", "axes": (0,)})


def test_dot_basic_and_batched(b):
    s = b.sym("s")
    x = b.parameter("x", (s, 32), f32)
    w = b.parameter("w", (32, 16), f32)
    assert b.dot(x, w).shape == (s, 16)
    q = b.parameter("q", (s, 4, 10, 8), f32)
    k = b.parameter("k", (s, 4, 8, 10), f32)
    assert b.dot(q, k).shape == (s, 4, 10, 10)


def test_dot_broadcast_batch(b):
    s = b.sym("s")
    q = b.parameter("q", (s, 4, 10, 8), f32)
    w = b.parameter("w", (8, 16), f32)
    assert b.dot(q, w).shape == (s, 4, 10, 16)


def test_dot_rejects_contraction_mismatch(b):
    x = b.parameter("x", (4, 32), f32)
    w = b.parameter("w", (16, 8), f32)
    with pytest.raises(InferenceError):
        b.dot(x, w)


def test_conv2d_same_and_valid(b):
    n = b.sym("n")
    x = b.parameter("x", (n, 32, 64, 3), f32)
    w = b.parameter("w", (3, 3, 3, 8), f32)
    assert b.conv2d(x, w).shape == (n, 32, 64, 8)
    assert b.conv2d(x, w, strides=(2, 2)).shape == (n, 16, 32, 8)
    assert b.conv2d(x, w, padding="valid").shape == (n, 30, 62, 8)


def test_conv2d_symbolic_width(b):
    n, wdt = b.sym("n"), b.sym("w")
    x = b.parameter("x", (n, 32, wdt, 3), f32)
    k = b.parameter("k", (3, 3, 3, 8), f32)
    out = b.conv2d(x, k, strides=(2, 2))
    assert out.shape[0] is n
    assert out.shape[3] == 8


def test_shape_ops(b):
    s = b.sym("s")
    x = b.parameter("x", (s, 4), f32)
    assert b.shape_of(x).shape == (2,)
    assert b.shape_of(x).dtype is i64
    assert b.dim_size(x, 1).shape == ()


def test_composites(b):
    s = b.sym("s")
    x = b.parameter("x", (s, 16), f32)
    g = b.parameter("g", (16,), f32)
    beta = b.parameter("bb", (16,), f32)
    assert b.softmax(x).shape == (s, 16)
    assert b.layer_norm(x, g, beta).shape == (s, 16)
    assert b.gelu(x).shape == (s, 16)


def test_layer_norm_checks_scale_extent(b):
    x = b.parameter("x", (4, 16), f32)
    bad = b.parameter("bad", (8,), f32)
    good = b.parameter("good", (16,), f32)
    with pytest.raises(InferenceError):
        b.layer_norm(x, bad, good)


def test_iota(b):
    s = b.sym("s")
    out = b.iota((s, s), axis=0)
    assert out.shape == (s, s)
    assert out.dtype is i64


def test_unknown_op_rejected(b):
    with pytest.raises(InferenceError):
        b.graph.add("frobnicate", ())


def test_arity_checked(b):
    x = b.parameter("x", (4,), f32)
    with pytest.raises(InferenceError):
        b.graph.add("add", (x,))
