"""pad and argmax/argmin: inference, semantics, compilation."""

import numpy as np
import pytest

from repro import A10, ExecutionEngine, compile_graph
from repro.interp import evaluate
from repro.ir import GraphBuilder, InferenceError, f32, i64, verify


@pytest.fixture
def b():
    return GraphBuilder("t")


def test_pad_static_inference(b):
    x = b.parameter("x", (4, 6), f32)
    out = b.pad(x, ((1, 2), (0, 3)))
    assert out.shape == (7, 9)
    assert out.dtype is f32


def test_pad_symbolic_mints_symbol(b):
    s = b.sym("s")
    x = b.parameter("x", (s, 6), f32)
    out = b.pad(x, ((1, 1), (0, 0)))
    assert out.shape[0] is not s       # padded extent is a fresh symbol
    assert out.shape[1] == 6


def test_pad_zero_preserves_symbol(b):
    s = b.sym("s")
    x = b.parameter("x", (s, 6), f32)
    out = b.pad(x, ((0, 0), (1, 1)))
    assert out.shape[0] is s


def test_pad_rejects_negative(b):
    x = b.parameter("x", (4,), f32)
    with pytest.raises(InferenceError):
        b.pad(x, ((-1, 0),))


def test_pad_rejects_wrong_rank(b):
    x = b.parameter("x", (4, 4), f32)
    with pytest.raises(InferenceError):
        b.pad(x, ((1, 1),))


def test_pad_semantics(b, rng):
    s = b.sym("s")
    x = b.parameter("x", (s, 3), f32)
    b.outputs(b.pad(x, ((2, 0), (1, 1)), value=9.0))
    xv = rng.normal(size=(2, 3)).astype(np.float32)
    (out,) = evaluate(b.graph, {"x": xv})
    assert out.shape == (4, 5)
    assert (out[:2] == 9.0).all()
    assert np.allclose(out[2:, 1:4], xv)


def test_argmax_inference(b):
    s = b.sym("s")
    x = b.parameter("x", (s, 8), f32)
    am = b.argmax(x, axis=1)
    assert am.shape == (s,)
    assert am.dtype is i64
    kept = b.argmin(x, axis=1, keepdims=True)
    assert kept.shape == (s, 1)


def test_argmax_single_axis_only(b):
    x = b.parameter("x", (4, 8), f32)
    with pytest.raises(InferenceError):
        b.graph.add("reduce", (x,), {"kind": "argmax", "axes": (0, 1)})


def test_argmax_argmin_semantics(b, rng):
    s = b.sym("s")
    x = b.parameter("x", (s, 8), f32)
    b.outputs(b.argmax(x, axis=1), b.argmin(x, axis=1))
    xv = rng.normal(size=(5, 8)).astype(np.float32)
    hi, lo = evaluate(b.graph, {"x": xv})
    assert np.array_equal(hi, xv.argmax(axis=1))
    assert np.array_equal(lo, xv.argmin(axis=1))


def test_compiled_classification_head(rng):
    """The realistic use: logits -> argmax, compiled and dynamic."""
    b = GraphBuilder("head")
    batch = b.sym("batch")
    logits = b.parameter("logits", (batch, 16), f32)
    b.outputs(b.argmax(b.softmax(logits), axis=-1))
    verify(b.graph)
    engine = ExecutionEngine(compile_graph(b.graph), A10)
    for n in (1, 9):
        x = rng.normal(size=(n, 16)).astype(np.float32)
        (pred,), __ = engine.run({"logits": x})
        assert np.array_equal(pred, x.argmax(axis=-1))


def test_pad_through_compiler(rng):
    b = GraphBuilder("padnet")
    s = b.sym("s")
    x = b.parameter("x", (s, 4), f32)
    y = b.relu(b.pad(x, ((1, 1), (0, 0))))
    b.outputs(y)
    engine = ExecutionEngine(compile_graph(b.graph), A10)
    xv = rng.normal(size=(3, 4)).astype(np.float32)
    (got,), __ = engine.run({"x": xv})
    (want,) = evaluate(b.graph, {"x": xv})
    assert np.allclose(got, want)
