"""The verifier catches every class of broken invariant."""

import pytest

from repro.ir import GraphBuilder, VerificationError, f32, verify


def make():
    b = GraphBuilder("g")
    x = b.parameter("x", (4, 8), f32)
    y = b.relu(x)
    b.outputs(b.exp(y))
    return b


def test_valid_graph_passes():
    verify(make().graph)


def test_foreign_operand_detected():
    b1, b2 = make(), make()
    # graft a node from b2 as an operand in b1
    b1.graph.nodes[2].inputs[0] = b2.graph.nodes[1]
    with pytest.raises(VerificationError, match="not owned"):
        verify(b1.graph)


def test_order_violation_detected():
    b = make()
    b.graph.nodes.reverse()
    with pytest.raises(VerificationError):
        verify(b.graph)


def test_foreign_output_detected():
    b1, b2 = make(), make()
    b1.graph.outputs = [b2.graph.nodes[-1]]
    with pytest.raises(VerificationError, match="output"):
        verify(b1.graph)


def test_stale_shape_detected():
    b = make()
    b.graph.nodes[1].shape = (99, 99)
    with pytest.raises(VerificationError, match="inferred|inconsistent"):
        verify(b.graph)


def test_stale_dtype_detected():
    from repro.ir import f64
    b = make()
    b.graph.nodes[2].dtype = f64
    with pytest.raises(VerificationError):
        verify(b.graph)
