"""Dtype table and promotion rules."""

import numpy as np
import pytest

from repro.ir import dtypes as dt


def test_sizes():
    assert dt.f16.size == 2
    assert dt.f32.size == 4
    assert dt.f64.size == 8
    assert dt.i32.size == 4
    assert dt.i64.size == 8
    assert dt.boolean.size == 1


def test_flags():
    assert dt.f32.is_float and not dt.f32.is_int and not dt.f32.is_bool
    assert dt.i64.is_int and not dt.i64.is_float
    assert dt.boolean.is_bool


def test_numpy_round_trip():
    for d in dt.ALL_DTYPES:
        assert dt.from_numpy(d.to_numpy()) is d


def test_from_numpy_accepts_dtype_like():
    assert dt.from_numpy(np.float32) is dt.f32
    assert dt.from_numpy("int64") is dt.i64


def test_from_numpy_rejects_unknown():
    with pytest.raises(KeyError):
        dt.from_numpy(np.complex64)


@pytest.mark.parametrize("a, b, expected", [
    (dt.f32, dt.f32, dt.f32),
    (dt.f32, dt.f64, dt.f64),
    (dt.i32, dt.i64, dt.i64),
    (dt.i64, dt.f32, dt.f32),
    (dt.boolean, dt.i32, dt.i32),
    (dt.f16, dt.f32, dt.f32),
])
def test_promote(a, b, expected):
    assert dt.promote(a, b) is expected
    assert dt.promote(b, a) is expected


def test_repr_is_name():
    assert repr(dt.f32) == "f32"
