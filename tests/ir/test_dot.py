"""DOT export."""

from repro.core.fusion import plan_fusion
from repro.core.symbolic import analyze_shapes
from repro.ir import GraphBuilder, f32
from repro.ir.dot import plan_to_dot, to_dot
from repro.passes import PassManager, default_pipeline

from ..conftest import toy_mlp_graph


def test_graph_dot_structure():
    b = GraphBuilder("viz")
    x = b.parameter("x", (4, 8), f32)
    y = b.relu(x)
    b.outputs(y)
    dot = to_dot(b.graph)
    assert dot.startswith('digraph "viz"')
    assert f"n{x.id} -> n{y.id};" in dot
    assert "doublecircle" in dot  # output marker
    assert dot.rstrip().endswith("}")


def test_graph_dot_every_node_present():
    b = toy_mlp_graph()
    dot = to_dot(b.graph)
    for node in b.graph.nodes:
        assert f"n{node.id} " in dot


def test_plan_dot_clusters_fused_groups():
    b = toy_mlp_graph()
    PassManager(default_pipeline()).run(b.graph)
    plan = plan_fusion(b.graph, analyze_shapes(b.graph))
    dot = plan_to_dot(plan)
    assert "subgraph cluster_" in dot
    assert "kStitch" in dot
    # the matmul is a singleton, coloured not clustered
    assert "#fdbf6f" in dot


def test_dot_escapes_quotes():
    b = GraphBuilder('we"ird')
    x = b.parameter("x", (2,), f32)
    b.outputs(b.relu(x))
    dot = to_dot(b.graph)
    assert 'digraph "we\\"ird"' in dot
