"""Textual graph rendering."""

import numpy as np

from repro.ir import GraphBuilder, f32, print_graph


def test_print_contains_signature_and_ops():
    b = GraphBuilder("mynet")
    s = b.sym("batch")
    x = b.parameter("x", (s, 8), f32)
    b.outputs(b.softmax(b.relu(x)))
    text = print_graph(b.graph)
    assert "func mynet(" in text
    assert "x: f32[batch, 8]" in text
    assert "relu(" in text
    assert "softmax(" in text
    assert text.strip().endswith("}")


def test_large_constants_elided():
    b = GraphBuilder("g")
    c = b.graph.constant(np.zeros((64, 64), dtype=np.float32))
    b.outputs(b.relu(c))
    text = print_graph(b.graph)
    assert "dense<float32[64, 64]>" in text


def test_small_constants_inline():
    b = GraphBuilder("g")
    c = b.graph.constant(np.asarray([1.0, 2.0], dtype=np.float32))
    b.outputs(b.relu(c))
    assert "[1.,2.]" in print_graph(b.graph)
