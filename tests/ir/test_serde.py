"""Graph JSON round-trips."""

import numpy as np
import pytest

from repro.interp import evaluate
from repro.ir import print_graph, verify
from repro.ir.serde import (graph_from_dict, graph_to_dict, load_graph,
                            save_graph)
from repro.models import build_model

from ..conftest import toy_mlp_graph, toy_mlp_inputs


def round_trip(graph):
    return graph_from_dict(graph_to_dict(graph))


def test_round_trip_verifies_and_prints_identically():
    graph = toy_mlp_graph().graph
    loaded = round_trip(graph)
    verify(loaded)
    assert print_graph(loaded) == print_graph(graph)


def test_round_trip_numerics(rng):
    graph = toy_mlp_graph().graph
    loaded = round_trip(graph)
    inputs = toy_mlp_inputs(rng, 3, 4)
    (a,) = evaluate(graph, inputs)
    (b,) = evaluate(loaded, inputs)
    assert np.array_equal(a, b)


def test_symbols_preserved_with_hints():
    b = toy_mlp_graph()
    loaded = round_trip(b.graph)
    assert loaded.symtab.lookup("batch").hint == 8
    x = loaded.param_named("x")
    assert x.shape[0].name == "batch"


def test_weights_bit_identical(rng):
    model = build_model("dien", items=64, embed_dim=8)
    loaded = round_trip(model.graph)
    originals = {n.id: n.attrs["value"]
                 for n in model.graph.by_op("constant")}
    for node in loaded.by_op("constant"):
        assert np.array_equal(node.attrs["value"], originals[node.id])
        assert node.attrs["value"].dtype == originals[node.id].dtype


def test_loaded_graph_still_extendable(rng):
    """New nodes/symbols created after load must not collide."""
    from repro.ir import GraphBuilder
    graph = round_trip(toy_mlp_graph().graph)
    builder = GraphBuilder(graph=graph)
    fresh = graph.symtab.fresh()
    assert fresh.name not in {s.name for s in graph.symtab.symbols()
                              if s is not fresh}
    new = builder.relu(graph.outputs[0])
    assert new.id > max(n.id for n in graph.nodes if n is not new)


def test_loaded_graph_compiles(rng):
    from repro import A10, ExecutionEngine, compile_graph
    model = build_model("bert", layers=1, hidden=64, heads=2, vocab=64)
    loaded = round_trip(model.graph)
    engine = ExecutionEngine(compile_graph(loaded), A10)
    inputs = model.make_inputs(rng, batch=2, seqlen=9)
    (got,), __ = engine.run(inputs)
    (want,) = evaluate(model.graph, inputs)
    assert np.allclose(got, want, atol=1e-4)


def test_file_round_trip(tmp_path, rng):
    graph = toy_mlp_graph().graph
    path = save_graph(graph, tmp_path / "model.json")
    loaded = load_graph(path)
    verify(loaded)
    inputs = toy_mlp_inputs(rng, 2, 3)
    (a,) = evaluate(graph, inputs)
    (b,) = evaluate(loaded, inputs)
    assert np.array_equal(a, b)


def test_version_checked():
    payload = graph_to_dict(toy_mlp_graph().graph)
    payload["format_version"] = 999
    with pytest.raises(ValueError, match="version"):
        graph_from_dict(payload)


def test_full_zoo_round_trips():
    small = {"layers": 1, "hidden": 64, "heads": 2, "vocab": 64}
    for name in ("gpt2", "crnn", "fastspeech2"):
        kwargs = small if name == "gpt2" else {}
        model = build_model(name, **kwargs)
        loaded = round_trip(model.graph)
        verify(loaded)
        assert len(loaded) == len(model.graph)
