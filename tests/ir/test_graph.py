"""Graph construction, queries, and mutation helpers."""

import numpy as np
import pytest

from repro.ir import GraphBuilder, VerificationError, f32, verify


def small_graph():
    b = GraphBuilder("g")
    x = b.parameter("x", (4, 8), f32)
    y = b.parameter("y", (4, 8), f32)
    s = b.add(x, y)
    t = b.mul(s, s)
    b.outputs(t)
    return b, x, y, s, t


def test_users_map():
    b, x, y, s, t = small_graph()
    users = b.graph.users()
    assert users[x] == [s]
    assert users[s] == [t, t] or users[s] == [t]
    assert users[t] == []


def test_param_lookup():
    b, x, *_ = small_graph()
    assert b.graph.param_named("x") is x
    assert b.graph.param_names() == ["x", "y"]
    with pytest.raises(KeyError):
        b.graph.param_named("zzz")


def test_replace_all_uses_and_prune():
    b, x, y, s, t = small_graph()
    # replace s with x everywhere: t = x * x, s becomes dead
    count = b.graph.replace_all_uses(s, x)
    assert count >= 1
    removed = b.graph.prune()
    assert removed == 1
    assert s not in list(b.graph)
    verify(b.graph)


def test_replace_in_outputs():
    b, x, y, s, t = small_graph()
    b.graph.replace_all_uses(t, s)
    assert b.graph.outputs == [s]


def test_prune_keeps_params():
    b = GraphBuilder("g")
    x = b.parameter("x", (4,), f32)
    unused = b.parameter("unused", (4,), f32)
    b.outputs(b.relu(x))
    b.graph.prune()
    assert unused in b.graph.params
    assert unused in list(b.graph)


def test_clone_is_deep():
    b, x, y, s, t = small_graph()
    clone = b.graph.clone()
    assert len(clone) == len(b.graph)
    assert clone.outputs[0] is not t
    assert clone.outputs[0].op == "mul"
    # mutating the clone leaves the original intact
    clone.replace_all_uses(clone.outputs[0], clone.params[0])
    assert b.graph.outputs[0] is t
    verify(clone)
    verify(b.graph)


def test_normalize_order_restores_topology():
    b, x, y, s, t = small_graph()
    b.graph.nodes.reverse()
    b.graph.normalize_order()
    verify(b.graph)


def test_by_op_and_find():
    b, *_ = small_graph()
    assert len(b.graph.by_op("add")) == 1
    assert len(b.graph.find(lambda n: n.is_elementwise)) == 2


def test_duplicate_param_names_caught_by_verifier():
    b = GraphBuilder("g")
    b.parameter("x", (4,), f32)
    b.parameter("x", (4,), f32)
    b.outputs(b.graph.params[0])
    with pytest.raises(VerificationError):
        verify(b.graph)


def test_len_and_iter():
    b, *_ = small_graph()
    assert len(b.graph) == 4
    assert [n.op for n in b.graph] == ["parameter", "parameter", "add",
                                       "mul"]


def test_constant_helper():
    b = GraphBuilder("g")
    c = b.graph.constant(np.ones((2, 2), dtype=np.float32))
    assert c.op == "constant"
    assert c.shape == (2, 2)
