"""Traversal utilities used by the fusion planner."""

from repro.ir import GraphBuilder, f32
from repro.ir.traversal import (ancestors, descendants,
                                has_path_through_external,
                                induced_subgraph_inputs,
                                induced_subgraph_outputs,
                                reverse_topological_order,
                                topological_order)


def chain():
    b = GraphBuilder("g")
    x = b.parameter("x", (4,), f32)
    a = b.relu(x)
    c = b.exp(a)
    d = b.neg(c)
    b.outputs(d)
    return b, x, a, c, d


def test_topological_order_is_node_order():
    b, *nodes = chain()
    assert topological_order(b.graph) == b.graph.nodes
    assert reverse_topological_order(b.graph) == b.graph.nodes[::-1]


def test_topological_order_resorts_when_broken():
    b, *nodes = chain()
    b.graph.nodes.reverse()
    order = topological_order(b.graph)
    position = {n: i for i, n in enumerate(order)}
    for node in order:
        assert all(position[i] < position[node] for i in node.inputs)


def test_ancestors_descendants():
    b, x, a, c, d = chain()
    users = b.graph.users()
    assert ancestors(d) == {x, a, c}
    assert ancestors(d, include_self=True) == {x, a, c, d}
    assert descendants(x, users) == {a, c, d}
    assert descendants(d, users) == set()


def test_induced_io():
    b, x, a, c, d = chain()
    users = b.graph.users()
    members = [a, c]
    assert induced_subgraph_inputs(members) == [x]
    assert induced_subgraph_outputs(members, users) == [c]
    # a value escaping as a graph output counts
    assert induced_subgraph_outputs([c, d], users, [d]) == [d]


def test_multi_output_group():
    b = GraphBuilder("g")
    x = b.parameter("x", (4,), f32)
    a = b.relu(x)
    u1 = b.exp(a)
    u2 = b.neg(a)
    b.outputs(b.add(u1, u2))
    users = b.graph.users()
    # group {a, u1}: a escapes (u2 uses it) and u1 escapes (add uses it)
    outs = induced_subgraph_outputs([a, u1], users)
    assert set(outs) == {a, u1}


def test_path_through_external():
    b = GraphBuilder("g")
    x = b.parameter("x", (4,), f32)
    a = b.relu(x)
    mid = b.exp(a)      # external bridge
    z = b.neg(mid)
    b.outputs(z)
    users = b.graph.users()
    # a -> mid -> z where mid outside both groups: merging {a} and {z}
    # would create a cycle through mid.
    assert has_path_through_external({a}, {z}, users)
    assert not has_path_through_external({z}, {a}, users)
    # direct edge does not count as "through external"
    assert not has_path_through_external({a}, {mid}, users)
