"""GraphBuilder conveniences: broadcast insertion, helpers."""

import pytest

from repro.ir import GraphBuilder, f32, i64


@pytest.fixture
def b():
    return GraphBuilder("t")


def test_auto_broadcast_bias(b):
    s = b.sym("s")
    x = b.parameter("x", (s, 16), f32)
    c = b.parameter("c", (16,), f32)
    out = b.add(x, c)
    assert out.shape == (s, 16)
    ops = [n.op for n in b.graph]
    assert "broadcast_in_dim" in ops


def test_no_broadcast_when_shapes_match(b):
    x = b.parameter("x", (4, 4), f32)
    y = b.parameter("y", (4, 4), f32)
    b.add(x, y)
    assert "broadcast_in_dim" not in [n.op for n in b.graph]


def test_scalar_broadcast(b):
    s = b.sym("s")
    x = b.parameter("x", (s, 8), f32)
    out = b.mul(x, b.scalar(2.0))
    assert out.shape == (s, 8)


def test_keepdims_reduction_broadcasts_back(b):
    s = b.sym("s")
    x = b.parameter("x", (s, 8), f32)
    peak = b.reduce_max(x, axes=1, keepdims=True)
    out = b.sub(x, peak)
    assert out.shape == (s, 8)


def test_incompatible_broadcast_raises(b):
    x = b.parameter("x", (4, 8), f32)
    y = b.parameter("y", (3,), f32)
    with pytest.raises(ValueError):
        b.add(x, y)


def test_broadcast_to_lower_rank_raises(b):
    x = b.parameter("x", (4, 8), f32)
    with pytest.raises(ValueError):
        b.broadcast_to(x, (8,))


def test_reshape_identity_is_noop(b):
    x = b.parameter("x", (4, 8), f32)
    assert b.reshape(x, (4, 8)) is x


def test_linear_helper(b):
    s = b.sym("s")
    x = b.parameter("x", (s, 32), f32)
    w = b.parameter("w", (32, 16), f32)
    c = b.parameter("c", (16,), f32)
    assert b.linear(x, w, c).shape == (s, 16)
    assert b.linear(x, w).shape == (s, 16)


def test_reduce_negative_axis_normalised(b):
    x = b.parameter("x", (4, 8), f32)
    out = b.reduce_sum(x, axes=-1)
    assert out.shape == (4,)
    assert out.attrs["axes"] == (1,)


def test_select_broadcasts_pred_and_else(b):
    s = b.sym("s")
    x = b.parameter("x", (s, 8), f32)
    pred = b.ge(x, b.scalar(0.0))
    out = b.select(pred, x, b.scalar(-1.0))
    assert out.shape == (s, 8)


def test_iota_dtype(b):
    out = b.iota((4,), axis=0, dtype=i64)
    assert out.dtype is i64


def test_constant_with_dtype_cast(b):
    c = b.constant([1, 2, 3], dtype=f32)
    assert c.dtype is f32
