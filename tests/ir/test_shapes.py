"""Symbolic shapes: symbol table, element counts, substitution."""

import pytest

from repro.ir.shapes import (SymbolTable, SymDim, dims_definitely_equal,
                             format_shape, is_static, num_elements,
                             substitute)


def test_fresh_symbols_are_distinct():
    table = SymbolTable()
    a, b = table.fresh(), table.fresh()
    assert a != b
    assert a.name != b.name
    assert len(table) == 2


def test_named_symbols_are_interned():
    table = SymbolTable()
    a = table.named("batch", hint=8)
    b = table.named("batch")
    assert a is b
    assert a.hint == 8
    assert "batch" in table


def test_hint_does_not_affect_equality():
    assert SymDim("s", 4) == SymDim("s", 99)
    assert hash(SymDim("s", 4)) == hash(SymDim("s", 99))


def test_is_static():
    s = SymDim("s")
    assert is_static((1, 2, 3))
    assert not is_static((1, s))
    assert is_static(())


def test_num_elements_static():
    assert num_elements((2, 3, 4)) == 24
    assert num_elements(()) == 1


def test_num_elements_symbolic_canonical():
    a, b = SymDim("a"), SymDim("b")
    assert num_elements((a, 4, b)) == (4, ("a", "b"))
    # order-independent
    assert num_elements((b, a, 4)) == num_elements((a, 4, b))


def test_substitute_partial_and_full():
    a, b = SymDim("a"), SymDim("b")
    shape = (a, 7, b)
    assert substitute(shape, {"a": 3}) == (3, 7, b)
    assert substitute(shape, {"a": 3, "b": 2}) == (3, 7, 2)


def test_dims_definitely_equal():
    a = SymDim("a")
    assert dims_definitely_equal(a, SymDim("a"))
    assert dims_definitely_equal(4, 4)
    assert not dims_definitely_equal(a, SymDim("b"))
    assert not dims_definitely_equal(a, 4)


def test_format_shape():
    a = SymDim("batch")
    assert format_shape((a, 128)) == "[batch, 128]"


def test_lookup_missing_raises():
    table = SymbolTable()
    with pytest.raises(KeyError):
        table.lookup("nope")
