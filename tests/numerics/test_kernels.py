"""Numpy semantics for each op versus direct numpy computation."""

import math

import numpy as np
import pytest
from scipy import special

from repro.ir import dtypes as dt
from repro.numerics import SemanticsError, apply_op


@pytest.fixture
def rng():
    return np.random.default_rng(7)


def test_unary_ops(rng):
    x = rng.normal(size=(3, 4)).astype(np.float32)
    assert np.allclose(apply_op("exp", [x], {}), np.exp(x))
    assert np.allclose(apply_op("neg", [x], {}), -x)
    assert np.allclose(apply_op("tanh", [x], {}), np.tanh(x))
    assert np.allclose(apply_op("relu", [x], {}), np.maximum(x, 0))
    assert np.allclose(apply_op("erf", [x], {}), special.erf(x),
                       atol=1e-6)
    assert np.allclose(apply_op("sigmoid", [x], {}), special.expit(x),
                       atol=1e-6)
    positive = np.abs(x) + 0.1
    assert np.allclose(apply_op("rsqrt", [positive], {}),
                       1 / np.sqrt(positive), atol=1e-6)


def test_binary_ops(rng):
    a = rng.normal(size=(4,)).astype(np.float32)
    b = rng.normal(size=(4,)).astype(np.float32) + 2.0
    assert np.allclose(apply_op("add", [a, b], {}), a + b)
    assert np.allclose(apply_op("sub", [a, b], {}), a - b)
    assert np.allclose(apply_op("mul", [a, b], {}), a * b)
    assert np.allclose(apply_op("div", [a, b], {}), a / b)
    assert np.allclose(apply_op("maximum", [a, b], {}), np.maximum(a, b))


def test_integer_div_floors():
    a = np.asarray([7, -7], dtype=np.int64)
    b = np.asarray([2, 2], dtype=np.int64)
    out = apply_op("div", [a, b], {})
    assert out.tolist() == [3, -4]


def test_compare_and_select(rng):
    a = rng.normal(size=(5,)).astype(np.float32)
    b = rng.normal(size=(5,)).astype(np.float32)
    lt = apply_op("lt", [a, b], {})
    assert lt.dtype == np.bool_
    out = apply_op("select", [lt, a, b], {})
    assert np.allclose(out, np.minimum(a, b))


def test_cast():
    x = np.asarray([1.7, -2.3], dtype=np.float32)
    out = apply_op("cast", [x], {"dtype": dt.i32})
    assert out.dtype == np.int32


def test_broadcast_in_dim():
    v = np.arange(3, dtype=np.float32)
    out = apply_op("broadcast_in_dim", [v], {
        "broadcast_dims": (1,), "_concrete_out_shape": (2, 3)})
    assert out.shape == (2, 3)
    assert np.allclose(out[0], v)


def test_reshape():
    x = np.arange(12, dtype=np.float32).reshape(3, 4)
    out = apply_op("reshape", [x], {"_concrete_new_shape": (2, 6)})
    assert out.shape == (2, 6)


def test_transpose():
    x = np.arange(6).reshape(2, 3)
    out = apply_op("transpose", [x], {"perm": (1, 0)})
    assert out.shape == (3, 2)


def test_slice():
    x = np.arange(20).reshape(4, 5)
    out = apply_op("slice", [x], {"starts": (1, 0), "limits": (4, 5),
                                  "strides": (2, 2)})
    assert np.array_equal(out, x[1:4:2, 0:5:2])


def test_concat():
    a = np.ones((2, 2)); b = np.zeros((2, 3))
    out = apply_op("concat", [a, b], {"axis": 1})
    assert out.shape == (2, 5)


def test_gather():
    table = np.arange(20, dtype=np.float32).reshape(10, 2)
    idx = np.asarray([[1, 3], [0, 9]], dtype=np.int64)
    out = apply_op("gather", [table, idx], {"axis": 0})
    assert out.shape == (2, 2, 2)
    assert np.allclose(out[1, 1], table[9])


@pytest.mark.parametrize("kind", ["sum", "max", "min", "mean", "prod"])
def test_reduce_kinds(rng, kind):
    x = rng.normal(size=(3, 4, 5)).astype(np.float32)
    fn = {"sum": np.sum, "max": np.max, "min": np.min, "mean": np.mean,
          "prod": np.prod}[kind]
    out = apply_op("reduce", [x], {"kind": kind, "axes": (1,),
                                   "keepdims": False})
    assert np.allclose(out, fn(x, axis=1), atol=1e-5)
    out2 = apply_op("reduce", [x], {"kind": kind, "axes": (2,),
                                    "keepdims": True})
    assert out2.shape == (3, 4, 1)


def test_dot(rng):
    a = rng.normal(size=(2, 3, 4)).astype(np.float32)
    b = rng.normal(size=(4, 5)).astype(np.float32)
    assert np.allclose(apply_op("dot", [a, b], {}), a @ b, atol=1e-5)


def test_conv2d_matches_manual(rng):
    x = rng.normal(size=(1, 5, 5, 2)).astype(np.float32)
    w = rng.normal(size=(3, 3, 2, 4)).astype(np.float32)
    out = apply_op("conv2d", [x, w], {"strides": (1, 1),
                                      "padding": "valid"})
    assert out.shape == (1, 3, 3, 4)
    # manual dot product at one spatial position
    patch = x[0, 1:4, 2:5, :]
    expected = np.tensordot(patch, w, axes=([0, 1, 2], [0, 1, 2]))
    assert np.allclose(out[0, 1, 2], expected, atol=1e-4)


def test_conv2d_same_padding_shape(rng):
    x = rng.normal(size=(2, 8, 10, 3)).astype(np.float32)
    w = rng.normal(size=(3, 3, 3, 6)).astype(np.float32)
    out = apply_op("conv2d", [x, w], {"strides": (2, 2),
                                      "padding": "same"})
    assert out.shape == (2, 4, 5, 6)


def test_softmax_rows_sum_to_one(rng):
    x = rng.normal(size=(4, 7)).astype(np.float32) * 10
    out = apply_op("softmax", [x], {"axis": -1})
    assert np.allclose(out.sum(axis=-1), 1.0, atol=1e-5)
    assert (out >= 0).all()


def test_softmax_is_shift_invariant(rng):
    x = rng.normal(size=(3, 5)).astype(np.float64)
    a = apply_op("softmax", [x], {"axis": -1})
    b = apply_op("softmax", [x + 1000.0], {"axis": -1})
    assert np.allclose(a, b, atol=1e-9)


def test_layer_norm_standardises(rng):
    x = rng.normal(size=(6, 16)).astype(np.float64) * 3 + 5
    scale = np.ones(16); bias = np.zeros(16)
    out = apply_op("layer_norm", [x, scale, bias], {"eps": 1e-9})
    assert np.allclose(out.mean(axis=-1), 0.0, atol=1e-7)
    assert np.allclose(out.std(axis=-1), 1.0, atol=1e-3)


def test_gelu_known_values():
    x = np.asarray([0.0, 1.0, -1.0], dtype=np.float64)
    out = apply_op("gelu", [x], {})
    expected = x * 0.5 * (1 + special.erf(x / math.sqrt(2)))
    assert np.allclose(out, expected)


def test_iota():
    out = apply_op("iota", [], {"shape": (2, 3), "axis": 1, "dtype": None})
    assert np.array_equal(out, [[0, 1, 2], [0, 1, 2]])


def test_shape_ops():
    x = np.zeros((3, 7))
    assert np.array_equal(apply_op("shape_of", [x], {}), [3, 7])
    assert apply_op("dim_size", [x], {"axis": 1}) == 7


def test_unknown_op_raises():
    with pytest.raises(SemanticsError):
        apply_op("nope", [], {})


def test_parameter_has_no_kernel():
    with pytest.raises(SemanticsError):
        apply_op("parameter", [], {})
