"""Symbol binding against concrete arrays."""

import numpy as np
import pytest

from repro.ir import GraphBuilder, f32
from repro.ir.shapes import SymDim
from repro.numerics import (BindingError, bind_inputs, concretize_attrs,
                            concretize_shape, resolve_all_dims,
                            solve_reshape_shape, unify_shape)


def test_unify_binds_and_checks():
    s = SymDim("s")
    bindings = {}
    unify_shape((s, 4), (7, 4), bindings)
    assert bindings == {"s": 7}
    unify_shape((s,), (7,), bindings)  # consistent rebind ok
    with pytest.raises(BindingError):
        unify_shape((s,), (9,), bindings)


def test_unify_rejects_rank_and_static_mismatch():
    with pytest.raises(BindingError):
        unify_shape((4,), (4, 1), {})
    with pytest.raises(BindingError):
        unify_shape((4,), (5,), {})


def test_bind_inputs():
    b = GraphBuilder("g")
    s = b.sym("s")
    b.parameter("x", (s, 4), f32)
    b.parameter("y", (s,), f32)
    bindings = bind_inputs(b.graph.params, {
        "x": np.zeros((3, 4)), "y": np.zeros((3,))})
    assert bindings == {"s": 3}


def test_bind_inputs_detects_inconsistency():
    b = GraphBuilder("g")
    s = b.sym("s")
    b.parameter("x", (s,), f32)
    b.parameter("y", (s,), f32)
    with pytest.raises(BindingError):
        bind_inputs(b.graph.params, {
            "x": np.zeros((3,)), "y": np.zeros((4,))})


def test_bind_inputs_missing_param():
    b = GraphBuilder("g")
    b.parameter("x", (4,), f32)
    with pytest.raises(BindingError, match="missing input"):
        bind_inputs(b.graph.params, {})


def test_concretize_shape():
    s = SymDim("s")
    assert concretize_shape((s, 4), {"s": 2}) == (2, 4)
    with pytest.raises(BindingError):
        concretize_shape((s,), {})


def test_solve_reshape_one_unknown():
    s = SymDim("bs")
    bindings = {}
    resolved = solve_reshape_shape((s, 8), 40, bindings)
    assert resolved == (5, 8)
    assert bindings == {"bs": 5}


def test_solve_reshape_all_known_validates():
    assert solve_reshape_shape((5, 8), 40, {}) == (5, 8)
    with pytest.raises(BindingError):
        solve_reshape_shape((5, 8), 41, {})


def test_solve_reshape_two_unknowns_rejected():
    with pytest.raises(BindingError):
        solve_reshape_shape((SymDim("a"), SymDim("b")), 40, {})


def test_solve_reshape_indivisible_rejected():
    with pytest.raises(BindingError):
        solve_reshape_shape((SymDim("a"), 7), 40, {})


def test_concretize_attrs_reshape_uses_operand_shape():
    b = GraphBuilder("g")
    s = b.sym("s")
    x = b.parameter("x", (s, 6), f32)
    node = b.reshape(x, (b.sym("t"), 3))
    bindings = {"s": 4}
    attrs = concretize_attrs(node, bindings, [(4, 6)])
    assert attrs["_concrete_new_shape"] == (8, 3)
    assert bindings["t"] == 8
    # original attrs untouched
    assert "_concrete_new_shape" not in node.attrs


def test_resolve_all_dims_reshape_chain():
    b = GraphBuilder("g")
    batch, seq = b.sym("batch"), b.sym("seq")
    x = b.parameter("x", (batch, seq, 8), f32)
    flat = b.reshape(x, (b.sym("bs"), 8))
    back = b.reshape(flat, (batch, seq, 8))
    b.outputs(back)
    bindings = {"batch": 2, "seq": 5}
    resolve_all_dims(b.graph.nodes, bindings)
    assert bindings["bs"] == 10


def test_resolve_all_dims_concat():
    b = GraphBuilder("g")
    s1, s2 = b.sym("s1"), b.sym("s2")
    x = b.parameter("x", (s1, 4), f32)
    y = b.parameter("y", (s2, 4), f32)
    cat = b.concat([x, y], axis=0)
    b.outputs(cat)
    bindings = {"s1": 3, "s2": 5}
    resolve_all_dims(b.graph.nodes, bindings)
    out_sym = cat.shape[0]
    assert bindings[out_sym.name] == 8


def test_resolve_all_dims_conv():
    b = GraphBuilder("g")
    n, w = b.sym("n"), b.sym("w")
    x = b.parameter("x", (n, 32, w, 3), f32)
    k = b.parameter("k", (3, 3, 3, 8), f32)
    out = b.conv2d(x, k, strides=(2, 2))
    b.outputs(out)
    bindings = {"n": 1, "w": 50}
    resolve_all_dims(b.graph.nodes, bindings)
    assert bindings[out.shape[2].name] == 25
