"""The virtual clock and the seeded discrete-event scheduler.

These are the foundation of every other serving test: if dispatch order
were not deterministic per seed, the whole suite would flake.
"""

import pytest

from repro.serving import VirtualClock, VirtualScheduler


def record_simultaneous(seed, n=6):
    """Dispatch order of ``n`` events all scheduled for t=100."""
    scheduler = VirtualScheduler(seed=seed)
    order = []
    for i in range(n):
        scheduler.call_at(100.0, lambda i=i: order.append(i))
    scheduler.run_until_idle()
    return order


def test_clock_never_goes_backwards():
    clock = VirtualClock(start_us=50.0)
    clock.advance_to(10.0)
    assert clock.now_us() == 50.0
    clock.advance_to(80.0)
    assert clock.now_us() == 80.0


def test_time_order_beats_submission_order():
    scheduler = VirtualScheduler(seed=3)
    order = []
    scheduler.call_at(300.0, lambda: order.append("late"))
    scheduler.call_at(100.0, lambda: order.append("early"))
    scheduler.call_after(200.0, lambda: order.append("mid"))
    scheduler.run_until_idle()
    assert order == ["early", "mid", "late"]
    assert scheduler.now_us() == 300.0


def test_unseeded_ties_dispatch_fifo():
    scheduler = VirtualScheduler(seed=None)
    order = []
    for i in range(5):
        scheduler.call_at(10.0, lambda i=i: order.append(i))
    scheduler.run_until_idle()
    assert order == [0, 1, 2, 3, 4]


def test_same_seed_same_interleaving():
    assert record_simultaneous(seed=11) == record_simultaneous(seed=11)


def test_distinct_seeds_explore_distinct_interleavings():
    orders = {tuple(record_simultaneous(seed=s)) for s in range(20)}
    assert len(orders) > 1, "seeds never permuted simultaneous events"


def test_cancelled_event_never_fires():
    scheduler = VirtualScheduler(seed=0)
    fired = []
    handle = scheduler.call_at(50.0, lambda: fired.append("cancelled"))
    scheduler.call_at(20.0, handle.cancel)
    scheduler.call_at(60.0, lambda: fired.append("kept"))
    scheduler.run_until_idle()
    assert fired == ["kept"]


def test_past_timestamp_clamps_to_now():
    scheduler = VirtualScheduler(seed=0)
    order = []
    def at_200():
        order.append("200")
        scheduler.call_at(5.0, lambda: order.append("clamped"))
    scheduler.call_at(200.0, at_200)
    scheduler.run_until_idle()
    assert order == ["200", "clamped"]
    assert scheduler.now_us() == 200.0


def test_run_until_stops_at_boundary():
    scheduler = VirtualScheduler(seed=0)
    order = []
    scheduler.call_at(100.0, lambda: order.append("a"))
    scheduler.call_at(500.0, lambda: order.append("b"))
    dispatched = scheduler.run_until(250.0)
    assert dispatched == 1 and order == ["a"]
    assert scheduler.now_us() == 250.0
    scheduler.run_until_idle()
    assert order == ["a", "b"]


def test_handlers_can_chain_events():
    scheduler = VirtualScheduler(seed=4)
    ticks = []
    def tick():
        ticks.append(scheduler.now_us())
        if len(ticks) < 4:
            scheduler.call_after(10.0, tick)
    scheduler.call_at(0.0, tick)
    scheduler.run_until_idle()
    assert ticks == [0.0, 10.0, 20.0, 30.0]


def test_runaway_loop_raises_instead_of_spinning():
    scheduler = VirtualScheduler(seed=0)
    def rearm():
        scheduler.call_after(1.0, rearm)
    scheduler.call_at(0.0, rearm)
    with pytest.raises(RuntimeError, match="did not go idle"):
        scheduler.run_until_idle(max_events=100)
