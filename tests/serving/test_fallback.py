"""The interpreter fallback: bit-identical outputs, eager-shaped cost."""

import numpy as np
import pytest

from repro.core import compile_graph
from repro.device import A10
from repro.models import MODEL_BUILDERS
from repro.runtime import ExecutionEngine
from repro.serving import InterpreterFallback

from ..conftest import toy_mlp_inputs
from ..models.test_zoo import small
from .conftest import bit_identical


def test_outputs_bit_identical_to_engine(toy_exe, rng):
    fallback = InterpreterFallback(toy_exe, A10)
    engine = ExecutionEngine(toy_exe, A10)
    for batch, seq in [(1, 1), (3, 5), (3, 5), (8, 16)]:
        inputs = toy_mlp_inputs(rng, batch, seq)
        expected, _ = engine.run(inputs)
        got, _ = fallback.run(inputs)
        assert bit_identical(expected, got)


@pytest.mark.parametrize("name", sorted(MODEL_BUILDERS))
def test_zoo_models_bit_identical(name, rng):
    model = small(name)
    exe = compile_graph(model.graph)
    inputs = model.make_inputs(
        rng, **{axis: lo for axis, (lo, _) in model.axes.items()})
    expected, _ = ExecutionEngine(exe, A10).run(inputs)
    got, _ = InterpreterFallback(exe, A10).run(inputs)
    assert bit_identical(expected, got)


def test_eager_cost_slower_than_compiled(toy_exe, rng):
    """The fallback must not be a free lunch: one dispatch-serialized
    launch per un-fused op dominates the fused engine's cost."""
    inputs = toy_mlp_inputs(rng, 3, 5)
    _, engine_stats = ExecutionEngine(toy_exe, A10).run(inputs)
    _, fallback_stats = InterpreterFallback(toy_exe, A10).run(inputs)
    assert fallback_stats.kernels_launched > engine_stats.kernels_launched
    assert fallback_stats.total_time_us > engine_stats.total_time_us
    assert fallback_stats.compile_time_us == 0.0


def test_cost_is_deterministic(toy_exe, rng):
    inputs = toy_mlp_inputs(rng, 2, 3)
    fallback = InterpreterFallback(toy_exe, A10)
    _, first = fallback.run(inputs)
    _, second = fallback.run(inputs)
    assert first == second
