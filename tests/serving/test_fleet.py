"""The fleet suite: routing, quotas, autoscaling, shared pools, replay.

Exact virtual-time tests throughout — every assertion is on precise
counters, replica names, and transcript events, never on "roughly".
The closing section mirrors the PR 4/6 determinism suites: one mixed
cluster scenario (simultaneous arrivals, per-replica compile faults, a
mid-stream drain) runs under 50 seeds; each seed must uphold every
fleet invariant and same-seed runs must replay the exact transcript.
"""

import numpy as np
import pytest

from repro.core import compile_graph
from repro.core.pipeline import CompileOptions
from repro.device import A10
from repro.fuzz import CompileFaultInjector
from repro.obs import MetricsRegistry, Tracer
from repro.runtime import ExecutionEngine, MemoryBudget
from repro.serving import (Arrival, AutoscalerOptions, ClusterSim,
                           FleetEngine, FleetOptions, ReplicaState,
                           ResponseStatus, ServingOptions,
                           SignatureAffinityPolicy, TenantTraffic,
                           TokenBucket, VirtualClock, VirtualScheduler,
                           poisson_arrivals)

from ..conftest import toy_mlp_graph, toy_mlp_inputs
from .conftest import FAST_COMPILE, bit_identical, make_fleet


@pytest.fixture(scope="module")
def proven_exe():
    """The toy MLP under declared deployment bounds: the symbolic peak
    is finitely proven, so :class:`MemoryBudget` has a number to admit
    replicas and batches against.  Numerics are untouched — outputs stay
    bit-identical to the unbounded ``toy_exe`` compile (the 50-seed
    suite asserts exactly that by comparing against ``toy_exe``'s
    engine)."""
    return compile_graph(toy_mlp_graph().graph, CompileOptions(
        assume_ranges={"batch": (1, 16), "seq": (1, 64)}))


@pytest.fixture(scope="module")
def inputs_a():
    return toy_mlp_inputs(np.random.default_rng(11), batch=3, seq=5)


@pytest.fixture(scope="module")
def inputs_b():
    return toy_mlp_inputs(np.random.default_rng(12), batch=4, seq=7)


def routed_replicas(fleet):
    """Replica names of every route event, in order."""
    return [e[6] for e in fleet.events if e[0] == "route"]


# -- routing policies ------------------------------------------------------


def test_round_robin_rotates_in_uid_order(toy_exe, inputs_a):
    scheduler, fleet = make_fleet(
        toy_exe, fleet={"replicas": 3, "policy": "round_robin"})
    for i in range(6):
        scheduler.call_at(i * 50_000.0,
                          lambda: fleet.submit("mlp", inputs_a))
    scheduler.run_until_idle()
    assert routed_replicas(fleet) == ["r0", "r1", "r2"] * 2


def test_least_outstanding_prefers_the_idle_replica(toy_exe, inputs_a):
    scheduler, fleet = make_fleet(
        toy_exe, fleet={"replicas": 2, "policy": "least_outstanding"})
    # Three back-to-back arrivals: r0 (tie broken by uid), then r1
    # (r0 now has one outstanding), then r0 again (tie at 1 apiece).
    for _ in range(3):
        scheduler.call_at(0.0, lambda: fleet.submit("mlp", inputs_a))
    scheduler.run_until_idle()
    assert routed_replicas(fleet) == ["r0", "r1", "r0"]


def test_affinity_pins_a_signature_to_one_replica(toy_exe, inputs_a):
    scheduler, fleet = make_fleet(
        toy_exe, fleet={"replicas": 4, "policy": "affinity"})
    for i in range(5):
        scheduler.call_at(i * 100_000.0,
                          lambda: fleet.submit("mlp", inputs_a))
    scheduler.run_until_idle()
    routes = routed_replicas(fleet)
    assert len(set(routes)) == 1, f"signature moved: {routes}"
    # Cold first touch, then the plan is compiled and every later
    # route is a warm affinity hit.
    assert fleet.counters["affinity_misses"] == 1
    assert fleet.counters["affinity_hits"] == 4
    assert fleet.counters["affinity_spills"] == 0


def test_affinity_mapping_is_stable_across_fleet_instances(
        toy_exe, inputs_a, inputs_b):
    placements = []
    for _ in range(2):
        scheduler, fleet = make_fleet(
            toy_exe, fleet={"replicas": 4, "policy": "affinity"})
        scheduler.call_at(0.0, lambda: fleet.submit("mlp", inputs_a))
        scheduler.call_at(0.0, lambda: fleet.submit("mlp", inputs_b))
        scheduler.run_until_idle()
        placements.append(tuple(sorted(routed_replicas(fleet))))
    assert placements[0] == placements[1]


def test_rendezvous_remaps_only_the_removed_replicas_signatures():
    class View:
        def __init__(self, uid):
            self.uid = uid
            self.name = f"r{uid}"

        def waiting(self):
            return 0

        def outstanding(self):
            return 0

        def warm(self, model, signature):
            return False

    policy = SignatureAffinityPolicy()
    replicas = [View(uid) for uid in range(4)]
    signatures = [((("batch", b), ("seq", s)),) for b in range(1, 11)
                  for s in range(1, 11)]
    before = {sig: policy.affine_replica("m", sig, replicas).name
              for sig in signatures}
    survivors = [r for r in replicas if r.name != "r2"]
    after = {sig: policy.affine_replica("m", sig, survivors).name
             for sig in signatures}
    moved = {sig for sig in signatures if before[sig] != after[sig]}
    # Exactly the signatures that lived on r2 remap; all others stay.
    assert moved == {sig for sig in signatures if before[sig] == "r2"}
    assert moved, "hash degenerated: r2 owned no signatures"


def test_affinity_spills_to_least_loaded_when_queue_is_deep(
        toy_exe, inputs_a):
    scheduler, fleet = make_fleet(
        toy_exe,
        fleet={"replicas": 3, "policy": "affinity",
               "affinity_spill_depth": 2})
    for _ in range(8):
        scheduler.call_at(0.0, lambda: fleet.submit("mlp", inputs_a))
    scheduler.run_until_idle()
    assert fleet.counters["affinity_spills"] > 0
    routes = routed_replicas(fleet)
    affine = routes[0]
    spilled = [r for r in routes if r != affine]
    assert spilled, "queue never spilled despite depth 2"
    # Spill events record both the affine owner and the overflow target.
    spill_events = [e for e in fleet.events
                    if e[0] == "route" and e[9]]
    assert all(e[8] == affine and e[6] != affine for e in spill_events)
    assert all(t.response.ok for t in fleet.tickets)


# -- tenant admission ------------------------------------------------------


def test_token_bucket_refills_on_the_clock():
    bucket = TokenBucket(rate_per_s=100.0, burst=2)
    assert bucket.try_acquire(0.0)
    assert bucket.try_acquire(0.0)
    assert not bucket.try_acquire(0.0)
    # 100/s = one token per 10ms of virtual time.
    assert bucket.try_acquire(10_000.0)
    assert not bucket.try_acquire(10_000.0)


def test_tenant_quota_sheds_then_recovers(toy_exe, inputs_a):
    scheduler, fleet = make_fleet(
        toy_exe,
        fleet={"replicas": 2, "policy": "round_robin",
               "tenant_quotas": {"metered": (100.0, 2)}})
    tickets = []
    for _ in range(3):
        scheduler.call_at(0.0, lambda: tickets.append(
            fleet.submit("mlp", inputs_a, tenant="metered")))
    scheduler.call_at(40_000.0, lambda: tickets.append(
        fleet.submit("mlp", inputs_a, tenant="metered")))
    scheduler.run_until_idle()
    statuses = [t.response.status for t in tickets]
    assert statuses == [ResponseStatus.OK, ResponseStatus.OK,
                        ResponseStatus.SHED, ResponseStatus.OK]
    shed = tickets[2]
    assert shed.done and shed.inner is None and shed.replica is None
    assert fleet.counters["tenant_shed"] == 1
    assert fleet.admission.shed == {"metered": 1}
    assert [e for e in fleet.events if e[0] == "shed"] == [
        ("shed", 0.0, 2, "metered", "mlp")]


def test_quota_exhaustion_is_per_tenant(toy_exe, inputs_a):
    scheduler, fleet = make_fleet(
        toy_exe,
        fleet={"replicas": 2, "policy": "round_robin",
               "tenant_quotas": {"noisy": (10.0, 1)}})
    tickets = []
    for _ in range(3):
        scheduler.call_at(0.0, lambda: tickets.append(
            fleet.submit("mlp", inputs_a, tenant="noisy")))
        scheduler.call_at(0.0, lambda: tickets.append(
            fleet.submit("mlp", inputs_a, tenant="quiet")))
    scheduler.run_until_idle()
    assert fleet.admission.shed.get("noisy") == 2
    assert "quiet" not in fleet.admission.shed
    assert fleet.admission.admitted["quiet"] == 3


# -- autoscaling -----------------------------------------------------------


AUTOSCALE = {
    "replicas": 1,
    "policy": "least_outstanding",
    "autoscaler": AutoscalerOptions(
        min_replicas=1, max_replicas=3, scale_up_queue_depth=2.0,
        sustain_us=5_000.0, cooldown_us=30_000.0,
        idle_retire_us=50_000.0, evaluate_every_us=2_000.0),
}


def overloaded_fleet(toy_exe, inputs_a, fleet_overrides=AUTOSCALE):
    scheduler, fleet = make_fleet(toy_exe, queue_capacity=1000,
                                  fleet=dict(fleet_overrides))
    tickets = []
    # 16ms of arrivals: the breach sustains by ~7ms, so the scaled-up
    # replica sees real traffic before the stream ends.
    for i in range(80):
        scheduler.call_at(i * 200.0, lambda: tickets.append(
            fleet.submit("mlp", inputs_a)))
    return scheduler, fleet, tickets


def test_autoscaler_scales_up_on_sustained_queue_depth(toy_exe, inputs_a):
    scheduler, fleet, tickets = overloaded_fleet(toy_exe, inputs_a)
    scheduler.run_until_idle()
    assert fleet.counters["scale_ups"] >= 1
    boots = [e for e in fleet.events
             if e[0] == "replica_up" and e[3] == "autoscale"]
    assert len(boots) == fleet.counters["scale_ups"]
    # The scaled-up replica takes real traffic.
    scaled_name = boots[0][2]
    assert scaled_name in routed_replicas(fleet)
    assert all(t.response.ok for t in tickets)


def test_autoscaler_drains_idle_replicas_back_to_minimum(
        toy_exe, inputs_a):
    scheduler, fleet, tickets = overloaded_fleet(toy_exe, inputs_a)
    scheduler.run_until_idle()
    # run_until_idle only returns once the tick loop disarmed, which
    # requires draining down to min_replicas first.
    assert len(fleet.active_replicas()) == 1
    assert fleet.counters["retires"] == fleet.counters["scale_ups"]
    for replica in fleet.retired:
        assert replica.state is ReplicaState.RETIRED
        assert replica.outstanding() == 0
    # Scale-down lost nothing: every submission resolved OK.
    assert len(tickets) == 80
    assert sum(1 for t in tickets if t.response.ok) == 80


def test_p99_breach_triggers_scale_up(toy_exe, inputs_a):
    overrides = dict(AUTOSCALE)
    overrides["autoscaler"] = AutoscalerOptions(
        min_replicas=1, max_replicas=3,
        scale_up_queue_depth=10_000.0,          # depth never breaches
        scale_up_p99_us=1_000.0, p99_window=16,
        sustain_us=5_000.0, cooldown_us=30_000.0,
        idle_retire_us=50_000.0, evaluate_every_us=2_000.0)
    scheduler, fleet, tickets = overloaded_fleet(toy_exe, inputs_a,
                                                 overrides)
    scheduler.run_until_idle()
    assert fleet.counters["scale_ups"] >= 1
    assert all(t.response.ok for t in tickets)


# -- memory budget ----------------------------------------------------------


def budget_for(executable, replicas: int, slack: float = 0.5):
    """A budget admitting exactly ``replicas`` copies of the model."""
    footprint = executable.symbolic_plan.footprint_hi_bytes(1)
    return MemoryBudget(int(footprint * (replicas + slack)))


def test_memory_budget_blocks_autoscaler_scale_up(proven_exe, inputs_a):
    """The device fits one replica; the autoscaler wants up to three.
    Every boot is refused on *proven* arithmetic, the refusals land in
    counters/events, and every request still resolves OK."""
    overrides = dict(AUTOSCALE)
    overrides["memory_budget"] = budget_for(proven_exe, replicas=1)
    scheduler, fleet, tickets = overloaded_fleet(proven_exe, inputs_a,
                                                 overrides)
    scheduler.run_until_idle()
    assert fleet.counters["scale_ups"] == 0
    assert fleet.counters["memory_blocked_scale_ups"] >= 1
    blocked = [e for e in fleet.events if e[0] == "scale_blocked_memory"]
    assert blocked and all(e[3] == 1 for e in blocked), \
        "every refusal must carry the proven replica cap"
    booted = {e[2] for e in fleet.events
              if e[0] == "replica_up" and e[3] == "autoscale"}
    assert not booted, "a replica booted past the budget"
    assert all(t.response.ok for t in tickets)


def test_memory_budget_register_fails_fast(proven_exe):
    """Three replicas cannot provably fit a two-replica budget: the
    fleet refuses the model at registration, not at first OOM."""
    with pytest.raises(ValueError, match="proven bytes"):
        make_fleet(proven_exe,
                   fleet={"replicas": 3, "policy": "round_robin",
                          "memory_budget": budget_for(proven_exe, 2)})


def test_memory_budget_stats_block(proven_exe):
    _, fleet = make_fleet(
        proven_exe,
        fleet={"replicas": 2, "policy": "round_robin",
               "memory_budget": budget_for(proven_exe, 3)})
    memory = fleet.stats()["memory"]
    footprint = proven_exe.symbolic_plan.footprint_hi_bytes(1)
    assert memory["footprint_per_replica_bytes"] == footprint
    assert memory["model_footprints"] == {"mlp": footprint}
    assert memory["replica_cap"] == 3
    assert memory["budget_bytes"] == budget_for(proven_exe, 3).usable_bytes


def test_unproven_footprint_never_silently_fits(toy_exe, inputs_a):
    """Without deployment bounds the peak is unprovable: the budget
    reports None (not "fits") and leaves scaling unconstrained."""
    scheduler, fleet = make_fleet(
        toy_exe,
        fleet={"replicas": 2, "policy": "round_robin",
               "memory_budget": MemoryBudget(1)})  # absurdly small
    scheduler.call_at(0.0, lambda: fleet.submit("mlp", inputs_a))
    scheduler.run_until_idle()
    memory = fleet.stats()["memory"]
    assert memory["footprint_per_replica_bytes"] is None
    assert memory["replica_cap"] is None
    assert fleet.counters["memory_blocked_scale_ups"] == 0


def test_manual_drain_finishes_queued_work_then_retires(
        toy_exe, inputs_a):
    scheduler, fleet = make_fleet(
        toy_exe, queue_capacity=1000,
        fleet={"replicas": 2, "policy": "round_robin"})
    tickets = []
    for _ in range(6):
        scheduler.call_at(0.0, lambda: tickets.append(
            fleet.submit("mlp", inputs_a)))
    scheduler.call_at(1_000.0, lambda: fleet.drain("r0"))
    late = []
    scheduler.call_at(500_000.0, lambda: late.append(
        fleet.submit("mlp", inputs_a)))
    scheduler.run_until_idle()
    # Everything queued on r0 before the drain still completed OK.
    assert all(t.response.ok for t in tickets)
    assert fleet.replica("r0").state is ReplicaState.RETIRED
    # Post-drain traffic never touches r0.
    assert late[0].replica == "r1"
    drain_at = next(e[1] for e in fleet.events if e[0] == "drain")
    post_drain = [e[6] for e in fleet.events
                  if e[0] == "route" and e[1] > drain_at]
    assert post_drain and "r0" not in post_drain


def test_draining_the_last_active_replica_is_refused(toy_exe):
    _, fleet = make_fleet(toy_exe, fleet={"replicas": 1})
    with pytest.raises(ValueError, match="last active"):
        fleet.drain("r0")


# -- compile pools ---------------------------------------------------------


def test_shared_pool_coalesces_identical_compiles_across_replicas(
        toy_exe, inputs_a):
    scheduler, fleet = make_fleet(
        toy_exe,
        fleet={"replicas": 3, "policy": "round_robin",
               "shared_compile_pool": True})
    for _ in range(3):
        scheduler.call_at(0.0, lambda: fleet.submit("mlp", inputs_a))
    scheduler.run_until_idle()
    pool = fleet.stats()["pool"]
    assert pool["jobs_submitted"] == 1
    assert pool["jobs_coalesced"] == 2
    # One compile installed the plan on *every* replica.
    signature = fleet.tickets[0].response.signature
    for replica in fleet.replicas():
        assert replica.warm("mlp", signature)
    # A warm wave is served fast on all three.
    warm = []
    for _ in range(3):
        scheduler.call_at(scheduler.now_us() + 1_000.0,
                          lambda: warm.append(fleet.submit("mlp",
                                                           inputs_a)))
    scheduler.run_until_idle()
    assert [t.response.path for t in warm] == ["fast"] * 3


def test_shared_pool_quarantine_is_fleet_wide(toy_exe, inputs_a):
    factory = lambda uid: CompileFaultInjector(permanent=True)
    scheduler, fleet = make_fleet(
        toy_exe, compile_fault_factory=factory,
        fleet={"replicas": 2, "policy": "round_robin",
               "shared_compile_pool": True})
    tickets = []
    for _ in range(4):
        scheduler.call_at(0.0, lambda: tickets.append(
            fleet.submit("mlp", inputs_a)))
    scheduler.run_until_idle()
    assert fleet.stats()["pool"]["quarantined"] == 1
    key = ("mlp", tickets[0].response.signature)
    for replica in fleet.replicas():
        assert key in replica.engine._quarantined
    assert all(t.response.ok for t in tickets)


def test_per_replica_pools_keep_quarantine_local(toy_exe, inputs_a):
    factory = lambda uid: (CompileFaultInjector(permanent=True)
                           if uid == 0 else None)
    scheduler, fleet = make_fleet(
        toy_exe, compile_fault_factory=factory,
        fleet={"replicas": 2, "policy": "round_robin"})
    tickets = []
    for i in range(4):
        scheduler.call_at(i * 100_000.0, lambda: tickets.append(
            fleet.submit("mlp", inputs_a)))
    scheduler.run_until_idle()
    r0, r1 = fleet.replica("r0"), fleet.replica("r1")
    key = ("mlp", tickets[0].response.signature)
    assert key in r0.engine._quarantined
    assert not r1.engine._quarantined
    # r1 compiled normally and serves the signature warm.
    assert r1.warm("mlp", key[1])
    assert not r0.warm("mlp", key[1])
    by_replica = {t.replica: t.response.path for t in tickets[-2:]}
    assert by_replica["r0"] == "quarantined"
    assert by_replica["r1"] == "fast"
    assert all(t.response.ok for t in tickets)


def test_stats_namespace_replicas_and_dedup_shared_pool(
        toy_exe, inputs_a):
    scheduler, fleet = make_fleet(
        toy_exe,
        fleet={"replicas": 2, "policy": "round_robin",
               "shared_compile_pool": True})
    for _ in range(2):
        scheduler.call_at(0.0, lambda: fleet.submit("mlp", inputs_a))
    scheduler.run_until_idle()
    stats = fleet.stats()
    # Per-replica blocks carry their replica's name and mark the pool
    # shared; the fleet aggregate counts the one pool once.
    assert set(stats["per_replica"]) == {"r0", "r1"}
    for name, block in stats["per_replica"].items():
        assert block["name"] == name
        assert block["pool"]["shared"] is True
    assert stats["pool"]["pools"] == 1
    assert stats["pool"]["jobs_submitted"] == 1
    naive_sum = sum(block["pool"]["jobs_submitted"]
                    for block in stats["per_replica"].values())
    assert naive_sum == 2, "replicas see the shared pool's counters"
    assert stats["requests"]["submitted"] == 2


def test_private_pools_aggregate_by_sum(toy_exe, inputs_a, inputs_b):
    scheduler, fleet = make_fleet(
        toy_exe, fleet={"replicas": 2, "policy": "round_robin"})
    scheduler.call_at(0.0, lambda: fleet.submit("mlp", inputs_a))
    scheduler.call_at(0.0, lambda: fleet.submit("mlp", inputs_b))
    scheduler.run_until_idle()
    stats = fleet.stats()
    assert stats["pool"]["pools"] == 2
    assert stats["pool"]["shared"] is False
    assert stats["pool"]["jobs_submitted"] == 2


# -- observability ---------------------------------------------------------


def test_fleet_emits_spans_and_per_replica_metrics(toy_exe, inputs_a):
    clock = VirtualClock()
    metrics = MetricsRegistry()
    scheduler = VirtualScheduler(seed=0, clock=clock)
    tracer = Tracer(clock=clock, metrics=metrics)
    fleet = FleetEngine(
        A10, scheduler,
        FleetOptions(replicas=2, policy="round_robin",
                     serving=ServingOptions(compile_cost=FAST_COMPILE)),
        tracer=tracer)
    fleet.register_model("mlp", toy_exe)
    for _ in range(4):
        scheduler.call_at(0.0, lambda: fleet.submit("mlp", inputs_a))
    scheduler.run_until_idle()
    snapshot = metrics.snapshot()["counters"]
    assert snapshot["fleet.routed"] == 4
    assert snapshot["fleet.routed.replica.r0"] == 2
    assert snapshot["fleet.routed.replica.r1"] == 2
    assert snapshot["events.fleet:route"] == 4
    assert snapshot["events.fleet:replica_up"] == 2


# -- ClusterSim: deterministic whole-cluster replay ------------------------


SEEDS = list(range(50))

SHAPES = [(3, 5), (3, 5), (4, 7), (3, 5), (2, 2), (4, 7), (3, 5), (2, 2)]


@pytest.fixture(scope="module")
def inputs_by_shape():
    rng = np.random.default_rng(99)
    return {(b, s): toy_mlp_inputs(rng, b, s) for b, s in set(SHAPES)}


@pytest.fixture(scope="module")
def expected_by_shape(toy_exe, inputs_by_shape):
    engine = ExecutionEngine(toy_exe, A10)
    return {shape: engine.run(inputs)[0]
            for shape, inputs in inputs_by_shape.items()}


def fleet_sim(exe, seed):
    def faults(sim_seed):
        # Replica r0 carries the fault schedule; the rest stay clean.
        return lambda uid: (
            CompileFaultInjector(transient_attempts=1, permanent_every=3)
            if uid == 0 else None)

    # When the peak is proven, run the cluster under a budget that
    # admits exactly the three base replicas — the memory accounting
    # then participates in every seed's invariant and replay checks.
    budget = None
    symbolic = exe.symbolic_plan
    if symbolic is not None and symbolic.proven:
        budget = budget_for(exe, replicas=3)
    return ClusterSim(
        A10, {"mlp": exe},
        FleetOptions(replicas=3, policy="affinity",
                     memory_budget=budget,
                     serving=ServingOptions(compile_cost=FAST_COMPILE,
                                            queue_capacity=16,
                                            compile_backoff_us=2_000.0)),
        seed=seed, compile_fault_factory=faults)


def scenario_arrivals(inputs_by_shape):
    arrivals = []
    # Three simultaneous arrivals (seed permutes their order), a
    # mid-flight wave, one tight deadline, then a warm wave.
    for shape in SHAPES[:3]:
        arrivals.append(Arrival(0.0, "alpha", "mlp",
                                inputs_by_shape[shape]))
    for shape in SHAPES[3:6]:
        arrivals.append(Arrival(400.0, "beta", "mlp",
                                inputs_by_shape[shape]))
    arrivals.append(Arrival(500.0, "alpha", "mlp",
                            inputs_by_shape[(3, 5)], deadline_us=80.0))
    for shape in SHAPES[6:]:
        arrivals.append(Arrival(90_000.0, "alpha", "mlp",
                                inputs_by_shape[shape]))
    return arrivals


@pytest.mark.parametrize("seed", SEEDS)
def test_seed_upholds_all_fleet_invariants(proven_exe, seed,
                                           inputs_by_shape,
                                           expected_by_shape):
    run = fleet_sim(proven_exe, seed).run(
        scenario_arrivals(inputs_by_shape),
        drains=[(50_000.0, "r1")])
    tickets = run.tickets
    assert len(tickets) == 9, "a request was lost"
    ok = 0
    for ticket in tickets:
        response = ticket.response
        assert response is not None, "request fell through the cracks"
        assert response.status in (ResponseStatus.OK,
                                   ResponseStatus.TIMEOUT,
                                   ResponseStatus.SHED)
        if response.ok:
            ok += 1
            shape = next(s for s, inputs in inputs_by_shape.items()
                         if inputs is ticket.request.inputs)
            assert bit_identical(expected_by_shape[shape],
                                 response.outputs), \
                f"seed {seed}: {response.path} diverged on {shape}"
    # No double service: fleet-wide responses equal submissions.
    counters = run.fleet.stats()["requests"]
    assert counters["submitted"] == 9
    assert counters["ok"] == ok
    assert counters["ok"] + counters["timeouts"] + counters["shed"] == 9
    # Fault schedules are per replica: only r0 can quarantine.
    for replica in run.fleet.replicas() + run.fleet.retired:
        if replica.name != "r0":
            assert not replica.engine._quarantined
    # The drained replica finished everything before retiring.
    drained = run.fleet.replica("r1")
    assert drained.state is ReplicaState.RETIRED
    assert drained.outstanding() == 0
    # Memory accounting holds on every seed: the proven footprint
    # admits exactly the base fleet, nothing was blocked, and the
    # snapshot is identical whichever interleaving played out.
    memory = run.fleet.stats()["memory"]
    assert memory["replica_cap"] == 3
    assert memory["footprint_per_replica_bytes"] == \
        memory["model_footprints"]["mlp"] > 0
    assert run.fleet.counters["memory_blocked_scale_ups"] == 0


@pytest.mark.parametrize("seed", [0, 17, 43])
def test_same_seed_replays_the_exact_transcript(proven_exe, seed,
                                                inputs_by_shape):
    sim = fleet_sim(proven_exe, seed)
    arrivals = scenario_arrivals(inputs_by_shape)
    first = sim.run(arrivals, drains=[(50_000.0, "r1")])
    second = sim.run(arrivals, drains=[(50_000.0, "r1")])
    assert first.transcript == second.transcript


def test_seeds_explore_distinct_cluster_interleavings(proven_exe,
                                                      inputs_by_shape):
    arrivals = scenario_arrivals(inputs_by_shape)
    transcripts = {fleet_sim(proven_exe, seed).run(arrivals).transcript
                   for seed in SEEDS[:10]}
    assert len(transcripts) > 1, \
        "50-seed sweep is vacuous: every seed produced one interleaving"


def test_poisson_traffic_replays_bit_for_bit(proven_exe, inputs_by_shape):
    pool = list(inputs_by_shape.values())
    traffic = [TenantTraffic("alpha", "mlp", rate_qps=600.0,
                             num_requests=20, inputs=pool),
               TenantTraffic("beta", "mlp", rate_qps=200.0,
                             num_requests=8, inputs=pool[:2])]
    arrivals = poisson_arrivals(traffic, seed=5)
    assert arrivals == poisson_arrivals(traffic, seed=5)
    assert arrivals != poisson_arrivals(traffic, seed=6)
    sim = fleet_sim(proven_exe, 5)
    assert sim.run(arrivals).transcript == sim.run(arrivals).transcript
