"""Shared fixtures for the serving-runtime suite.

Everything here runs under the virtual clock — no test in this directory
may sleep or read wall time.  The compiled toy model is session-scoped
because compilation cost dominates these tests and the executable is
immutable.
"""

from __future__ import annotations

import pytest

from repro.core import compile_graph
from repro.device import A10
from repro.serving import (BatchingServingEngine, FleetEngine,
                           FleetOptions, ServingEngine, ServingOptions,
                           SignatureCompileCost, VirtualScheduler)

from ..conftest import toy_mlp_graph

#: small compile cost so tests exercise ordering, not magnitude.
FAST_COMPILE = SignatureCompileCost(fixed_us=10_000.0, per_kernel_us=100.0)


@pytest.fixture(scope="session")
def toy_exe():
    return compile_graph(toy_mlp_graph().graph)


@pytest.fixture
def device():
    return A10


def make_serving(exe, seed=0, compile_fault=None, **option_overrides):
    """A (scheduler, engine) pair with the toy model registered."""
    option_overrides.setdefault("compile_cost", FAST_COMPILE)
    options = ServingOptions(**option_overrides)
    scheduler = VirtualScheduler(seed=seed)
    engine = ServingEngine(A10, scheduler, options,
                           compile_fault=compile_fault)
    engine.register_model("mlp", exe)
    return scheduler, engine


def make_batching(exe, seed=0, compile_fault=None, batching=None,
                  tracer=None, **option_overrides):
    """A (scheduler, engine) pair with dynamic batching in front."""
    option_overrides.setdefault("compile_cost", FAST_COMPILE)
    options = ServingOptions(**option_overrides)
    scheduler = VirtualScheduler(seed=seed)
    engine = BatchingServingEngine(A10, scheduler, options,
                                   batching=batching,
                                   compile_fault=compile_fault,
                                   tracer=tracer)
    engine.register_model("mlp", exe)
    return scheduler, engine


def make_fleet(exe, seed=0, compile_fault_factory=None, tracer=None,
               fleet=None, **serving_overrides):
    """A (scheduler, fleet) pair with the toy model registered.

    ``fleet`` holds :class:`FleetOptions` field overrides (replicas,
    policy, quotas, autoscaler, ...); the remaining keyword arguments
    configure the per-replica :class:`ServingOptions`.
    """
    serving_overrides.setdefault("compile_cost", FAST_COMPILE)
    options = FleetOptions(serving=ServingOptions(**serving_overrides),
                           **(fleet or {}))
    scheduler = VirtualScheduler(seed=seed)
    engine = FleetEngine(A10, scheduler, options,
                         compile_fault_factory=compile_fault_factory,
                         tracer=tracer)
    engine.register_model("mlp", exe)
    return scheduler, engine


def bit_identical(expected, got) -> bool:
    if len(expected) != len(got):
        return False
    for e, g in zip(expected, got):
        if e.shape != g.shape or e.dtype != g.dtype or \
                e.tobytes() != g.tobytes():
            return False
    return True
