"""Property: every served response == a direct single-threaded run.

For any generated graph, any shape bindings, any interleaving seed and
any compile-fault schedule, every OK response out of the serving runtime
is *bit-identical* to running the same inputs through an
``ExecutionEngine`` directly — a request cannot observe which path
(fast, fallback, quarantined) served it.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import compile_graph
from repro.device import A10
from repro.fuzz import CompileFaultInjector, make_inputs
from repro.fuzz.sampler import binding_suite
from repro.runtime import ExecutionEngine
from repro.serving import (BatchingOptions, BatchingServingEngine,
                           FleetEngine, FleetOptions, ResponseStatus,
                           ServingEngine, ServingOptions,
                           SignatureCompileCost, VirtualScheduler)

from ..strategies import batched_request_mixes, fuzz_graphs
from .conftest import bit_identical


@settings(max_examples=12, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(graph=fuzz_graphs(max_nodes=10),
       seed=st.integers(min_value=0, max_value=2**16),
       transient=st.integers(min_value=0, max_value=2),
       permanent_every=st.sampled_from([None, 2]))
def test_responses_bit_identical_to_direct_engine(graph, seed, transient,
                                                  permanent_every):
    executable = compile_graph(graph)
    reference = ExecutionEngine(executable, A10)
    fault = CompileFaultInjector(transient_attempts=transient,
                                 permanent_every=permanent_every)
    scheduler = VirtualScheduler(seed=seed)
    serving = ServingEngine(
        A10, scheduler,
        ServingOptions(
            compile_workers=1 + seed % 3,
            compile_backoff_us=500.0,
            compile_cost=SignatureCompileCost(fixed_us=2_000.0,
                                              per_kernel_us=50.0)),
        compile_fault=fault)
    serving.register_model("m", executable)

    cases = [make_inputs(graph, bindings, seed=7)
             for bindings in binding_suite(graph, limit=2)]
    tickets = []
    for index, inputs in enumerate(cases):
        # A cold burst (simultaneous with the other signatures) and a
        # warm revisit long after the compiles settled.
        scheduler.call_at(0.0, lambda i=inputs: tickets.append(
            (i, serving.submit("m", i))))
        scheduler.call_at(1e7 + index, lambda i=inputs: tickets.append(
            (i, serving.submit("m", i))))
    scheduler.run_until_idle()

    assert len(tickets) == 2 * len(cases)
    for inputs, ticket in tickets:
        response = ticket.response
        assert response is not None and response.ok
        expected, _ = reference.run(inputs)
        assert bit_identical(expected, response.outputs), \
            f"path {response.path!r} diverged from direct engine run"


@settings(max_examples=12, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(graph=fuzz_graphs(max_nodes=10),
       mix=batched_request_mixes(),
       seed=st.integers(min_value=0, max_value=2**16),
       transient=st.integers(min_value=0, max_value=1),
       permanent_every=st.sampled_from([None, 2]))
def test_batched_responses_bit_identical_to_direct_engine(
        graph, mix, seed, transient, permanent_every):
    """The batching property: for any graph, any request mix (arrival
    waves, shared and distinct signatures, tight deadlines), any seed
    and any compile-fault schedule, every OK response out of the
    batching engine — batched or solo, padded or not — is bit-identical
    to a direct ``ExecutionEngine`` run of the same inputs."""
    executable = compile_graph(graph)
    reference = ExecutionEngine(executable, A10)
    fault = CompileFaultInjector(transient_attempts=transient,
                                 permanent_every=permanent_every)
    scheduler = VirtualScheduler(seed=seed)
    serving = BatchingServingEngine(
        A10, scheduler,
        ServingOptions(
            compile_workers=1 + seed % 2,
            compile_backoff_us=500.0,
            compile_cost=SignatureCompileCost(fixed_us=2_000.0,
                                              per_kernel_us=50.0)),
        batching=BatchingOptions(max_batch_size=4,
                                 max_queue_delay_us=1_500.0),
        compile_fault=fault)
    serving.register_model("m", executable)

    cases = [make_inputs(graph, bindings, seed=7)
             for bindings in binding_suite(graph, limit=3)]
    tickets = []
    for index, (case_index, arrival_us, tight) in enumerate(mix):
        inputs = cases[case_index % len(cases)]
        deadline = 1_000.0 if tight else None
        scheduler.call_at(arrival_us, lambda i=inputs, d=deadline:
                          tickets.append((i, serving.submit("m", i, d))))
    scheduler.run_until_idle()

    assert len(tickets) == len(mix)
    for inputs, ticket in tickets:
        response = ticket.response
        assert response is not None
        assert response.status in (ResponseStatus.OK,
                                   ResponseStatus.TIMEOUT,
                                   ResponseStatus.SHED)
        if response.ok:
            expected, _ = reference.run(inputs)
            assert bit_identical(expected, response.outputs), \
                f"path {response.path!r} diverged from direct engine run"


@settings(max_examples=12, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(graph=fuzz_graphs(max_nodes=10),
       seed=st.integers(min_value=0, max_value=2**16),
       replicas=st.integers(min_value=1, max_value=4),
       policy=st.sampled_from(["affinity", "round_robin",
                               "least_outstanding"]),
       shared_pool=st.booleans(),
       transient=st.integers(min_value=0, max_value=2),
       permanent_every=st.sampled_from([None, 2]),
       drain_mid_stream=st.booleans())
def test_fleet_responses_bit_identical_to_direct_engine(
        graph, seed, replicas, policy, shared_pool, transient,
        permanent_every, drain_mid_stream):
    """The fleet property: for any graph, any routing policy, any
    replica count, any per-replica compile-fault schedule, and a scale
    event mid-stream, every OK fleet response is bit-identical to a
    direct ``ExecutionEngine`` run — a request cannot observe which
    replica (or which path on it) served it."""
    executable = compile_graph(graph)
    reference = ExecutionEngine(executable, A10)
    faults = {}

    def fault_factory(uid):
        # Every replica gets its own seeded schedule; uid -1 is the
        # shared pool's fleet-level schedule.
        return faults.setdefault(uid, CompileFaultInjector(
            transient_attempts=(transient + uid) % 3,
            permanent_every=permanent_every))

    scheduler = VirtualScheduler(seed=seed)
    fleet = FleetEngine(
        A10, scheduler,
        FleetOptions(
            replicas=replicas, policy=policy,
            shared_compile_pool=shared_pool,
            serving=ServingOptions(
                compile_workers=1 + seed % 3,
                compile_backoff_us=500.0,
                compile_cost=SignatureCompileCost(fixed_us=2_000.0,
                                                  per_kernel_us=50.0))),
        compile_fault_factory=fault_factory)
    fleet.register_model("m", executable)

    cases = [make_inputs(graph, bindings, seed=7)
             for bindings in binding_suite(graph, limit=2)]
    tickets = []
    for index, inputs in enumerate(cases):
        scheduler.call_at(0.0, lambda i=inputs: tickets.append(
            (i, fleet.submit("m", i))))
        scheduler.call_at(1e7 + index, lambda i=inputs: tickets.append(
            (i, fleet.submit("m", i))))
    if drain_mid_stream and replicas > 1:
        scheduler.call_at(5_000.0, lambda: fleet.drain("r0"))
    scheduler.run_until_idle()

    assert len(tickets) == 2 * len(cases)
    for inputs, ticket in tickets:
        response = ticket.response
        assert response is not None and response.ok
        expected, _ = reference.run(inputs)
        assert bit_identical(expected, response.outputs), \
            f"replica {ticket.replica!r} path {response.path!r} " \
            "diverged from direct engine run"
