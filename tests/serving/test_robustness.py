"""Deadlines, shedding, retry-with-backoff, quarantine.

The invariant under test throughout: compile failures degrade service
(slower path, never a better one) but no request ever observes an error
— the only response statuses are OK, TIMEOUT and SHED, and every OK
response carries correct outputs.
"""

import pytest

from repro.device import A10
from repro.fuzz import CompileFaultInjector
from repro.runtime import ExecutionEngine
from repro.serving import CompileState, ResponseStatus

from ..conftest import toy_mlp_inputs
from .conftest import FAST_COMPILE, bit_identical, make_serving


# -- deadlines --------------------------------------------------------------

def test_deadline_expiry_mid_service(toy_exe, rng):
    scheduler, serving = make_serving(toy_exe, seed=2)
    inputs = toy_mlp_inputs(rng, 3, 5)
    ticket = serving.submit("mlp", inputs, deadline_us=100.0)
    scheduler.run_until_idle()
    response = ticket.response
    assert response.status is ResponseStatus.TIMEOUT
    assert response.latency_us == pytest.approx(100.0)
    assert response.outputs is None
    assert serving.counters["timeouts"] == 1
    # The server still finished the work and went on serving.
    assert serving.counters["ok"] == 0


def test_deadline_expiry_while_queued(toy_exe, rng):
    scheduler, serving = make_serving(toy_exe, seed=2)
    inputs = toy_mlp_inputs(rng, 3, 5)
    first = serving.submit("mlp", inputs)
    second = serving.submit("mlp", inputs, deadline_us=50.0)
    third = serving.submit("mlp", inputs)
    scheduler.run_until_idle()
    assert first.response.ok
    assert second.response.status is ResponseStatus.TIMEOUT
    assert third.response.ok


def test_default_deadline_applies(toy_exe, rng):
    scheduler, serving = make_serving(toy_exe, seed=2,
                                      default_deadline_us=10.0)
    ticket = serving.submit("mlp", toy_mlp_inputs(rng, 3, 5))
    scheduler.run_until_idle()
    assert ticket.response.status is ResponseStatus.TIMEOUT


def test_completed_request_cancels_its_deadline_timer(toy_exe, rng):
    scheduler, serving = make_serving(toy_exe, seed=2)
    ticket = serving.submit("mlp", toy_mlp_inputs(rng, 3, 5),
                            deadline_us=1e9)
    scheduler.run_until_idle()
    assert ticket.response.ok
    assert serving.counters["timeouts"] == 0


# -- admission control ------------------------------------------------------

def test_queue_overflow_sheds(toy_exe, rng):
    scheduler, serving = make_serving(toy_exe, seed=2, queue_capacity=1)
    inputs = toy_mlp_inputs(rng, 3, 5)
    tickets = [serving.submit("mlp", inputs) for _ in range(4)]
    # First is in service, second waits, the rest are shed immediately.
    assert tickets[2].response.status is ResponseStatus.SHED
    assert tickets[3].response.status is ResponseStatus.SHED
    scheduler.run_until_idle()
    assert tickets[0].response.ok and tickets[1].response.ok
    assert serving.counters["shed"] == 2


def test_shedding_recovers_when_queue_drains(toy_exe, rng):
    scheduler, serving = make_serving(toy_exe, seed=2, queue_capacity=1)
    inputs = toy_mlp_inputs(rng, 3, 5)
    serving.submit("mlp", inputs)
    serving.submit("mlp", inputs)
    shed = serving.submit("mlp", inputs)
    scheduler.run_until_idle()
    retry = serving.submit("mlp", inputs)
    scheduler.run_until_idle()
    assert shed.response.status is ResponseStatus.SHED
    assert retry.response.ok


# -- compile faults ---------------------------------------------------------

def test_transient_failure_retries_with_backoff(toy_exe, rng):
    fault = CompileFaultInjector(transient_attempts=1)
    scheduler, serving = make_serving(toy_exe, seed=2,
                                      compile_fault=fault,
                                      compile_backoff_us=5_000.0)
    ticket = serving.submit("mlp", toy_mlp_inputs(rng, 3, 5))
    scheduler.run_until_idle()
    assert ticket.response.ok
    stats = serving.pool.stats
    assert stats.transient_failures == 1
    assert stats.compiles_succeeded == 1
    assert stats.quarantined == 0
    # attempt 1 ends at d; retry starts at d + backoff, ends at
    # 2d + backoff — exact virtual timestamps, no slop needed.
    duration = serving.model("mlp").compile_duration_us
    record = serving.pool.record(("mlp", ticket.request.signature))
    assert record.finished_at_us == 2 * duration + 5_000.0
    warm = serving.submit("mlp", toy_mlp_inputs(rng, 3, 5))
    scheduler.run_until_idle()
    assert warm.response.path == "fast"


def test_backoff_grows_exponentially(toy_exe, rng):
    fault = CompileFaultInjector(transient_attempts=2)
    scheduler, serving = make_serving(toy_exe, seed=2,
                                      compile_fault=fault,
                                      max_compile_retries=3,
                                      compile_backoff_us=1_000.0,
                                      backoff_multiplier=3.0)
    ticket = serving.submit("mlp", toy_mlp_inputs(rng, 3, 5))
    scheduler.run_until_idle()
    duration = serving.model("mlp").compile_duration_us
    record = serving.pool.record(("mlp", ticket.request.signature))
    # 3 attempts, backoffs of 1000 then 3000 between them.
    assert record.finished_at_us == 3 * duration + 1_000.0 + 3_000.0
    assert record.state is CompileState.READY


def test_permanent_failure_quarantines(toy_exe, rng):
    fault = CompileFaultInjector(permanent=True)
    scheduler, serving = make_serving(toy_exe, seed=2,
                                      compile_fault=fault)
    inputs = toy_mlp_inputs(rng, 3, 5)
    first = serving.submit("mlp", inputs)
    scheduler.run_until_idle()
    later = serving.submit("mlp", inputs)
    scheduler.run_until_idle()
    assert first.response.ok and first.response.path == "fallback"
    assert later.response.ok and later.response.path == "quarantined"
    assert serving.pool.stats.permanent_failures == 1
    assert serving.pool.stats.quarantined == 1
    # Quarantine means *no more compile attempts*, ever.
    assert serving.pool.stats.jobs_submitted == 1
    assert len(fault.calls) == 1
    expected, _ = ExecutionEngine(toy_exe, A10).run(inputs)
    assert bit_identical(expected, later.response.outputs)


def test_exhausted_retries_quarantine(toy_exe, rng):
    fault = CompileFaultInjector(transient_attempts=99)
    scheduler, serving = make_serving(toy_exe, seed=2,
                                      compile_fault=fault,
                                      max_compile_retries=2)
    ticket = serving.submit("mlp", toy_mlp_inputs(rng, 3, 5))
    scheduler.run_until_idle()
    assert ticket.response.ok
    stats = serving.pool.stats
    assert stats.transient_failures == 3  # initial try + 2 retries
    assert stats.quarantined == 1
    assert serving.compile_state(
        "mlp", ticket.request.signature) is CompileState.QUARANTINED


def test_quarantine_is_per_signature(toy_exe, rng):
    # Only the second distinct signature fails permanently.
    fault = CompileFaultInjector(permanent_every=2)
    scheduler, serving = make_serving(toy_exe, seed=2,
                                      compile_fault=fault)
    inputs_a = toy_mlp_inputs(rng, 3, 5)
    inputs_b = toy_mlp_inputs(rng, 4, 7)
    serving.submit("mlp", inputs_a)
    serving.submit("mlp", inputs_b)
    scheduler.run_until_idle()
    warm_a = serving.submit("mlp", inputs_a)
    warm_b = serving.submit("mlp", inputs_b)
    scheduler.run_until_idle()
    assert warm_a.response.path == "fast"
    assert warm_b.response.path == "quarantined"
    assert len(serving.quarantined_signatures()) == 1


# -- synchronous-compile baseline -------------------------------------------

def test_sync_mode_stalls_on_cold_signatures(toy_exe, rng):
    scheduler, serving = make_serving(toy_exe, seed=2,
                                      background_compile=False)
    inputs = toy_mlp_inputs(rng, 3, 5)
    cold = serving.submit("mlp", inputs)
    scheduler.run_until_idle()
    warm = serving.submit("mlp", inputs)
    scheduler.run_until_idle()
    duration = serving.model("mlp").compile_duration_us
    assert cold.response.path == "sync_compile"
    assert cold.response.latency_us >= duration
    assert warm.response.path == "fast"
    assert warm.response.latency_us < duration
    assert serving.counters["sync_compile_stalls"] == 1
    expected, _ = ExecutionEngine(toy_exe, A10).run(inputs)
    assert bit_identical(expected, cold.response.outputs)


def test_sync_mode_survives_permanent_faults(toy_exe, rng):
    fault = CompileFaultInjector(permanent=True)
    scheduler, serving = make_serving(toy_exe, seed=2,
                                      background_compile=False,
                                      compile_fault=fault)
    inputs = toy_mlp_inputs(rng, 3, 5)
    first = serving.submit("mlp", inputs)
    second = serving.submit("mlp", inputs)
    scheduler.run_until_idle()
    assert first.response.ok and first.response.path == "quarantined"
    assert second.response.ok and second.response.path == "quarantined"
    expected, _ = ExecutionEngine(toy_exe, A10).run(inputs)
    assert bit_identical(expected, first.response.outputs)
