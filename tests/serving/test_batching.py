"""The deterministic batching harness: every flush at an exact tick.

All scenarios run on the virtual scheduler, so bucket membership, flush
times and completion times are asserted *exactly* — no tolerance bands,
no sleeps.  The toy MLP's two free axes (batch, seq) are one constraint
class each, so a signature ``(b, s)`` buckets by the pow2 ceilings
``(ceil2(b), ceil2(s))``.
"""

import numpy as np
import pytest

from repro.device import A10
from repro.obs import MetricsRegistry, Tracer
from repro.runtime import ExecutionEngine
from repro.serving import (BatchingOptions, PermanentCompileError,
                           ResponseStatus, ServingEngine)

from ..conftest import toy_mlp_inputs
from .conftest import bit_identical, make_batching, make_serving

DELAY_US = 2_000.0


def options(**overrides):
    overrides.setdefault("max_queue_delay_us", DELAY_US)
    return BatchingOptions(**overrides)


@pytest.fixture(scope="module")
def inputs_by_shape():
    rng = np.random.default_rng(42)
    return {(b, s): toy_mlp_inputs(rng, b, s)
            for b, s in [(3, 5), (4, 7), (2, 2), (3, 5)][:3]}


@pytest.fixture(scope="module")
def expected_by_shape(toy_exe, inputs_by_shape):
    engine = ExecutionEngine(toy_exe, A10)
    return {shape: engine.run(inputs)[0]
            for shape, inputs in inputs_by_shape.items()}


def warm_batched(serving, shape_inputs, batch_size):
    """Pre-freeze the batched plan the bucket of ``shape_inputs`` needs;
    returns its frozen per-launch cost."""
    entry = serving.model("mlp")
    signature = entry.engine.host_program.signature(shape_inputs)
    padded = serving.bucketer("mlp").padded_signature(signature)
    plan = entry.engine.prepare_batched(padded, batch_size)
    return plan.make_stats().total_time_us


# ---------------------------------------------------------------------------
# bucketing rules
# ---------------------------------------------------------------------------

def test_compatible_signatures_share_a_bucket_key(toy_exe,
                                                  inputs_by_shape):
    _, serving = make_batching(toy_exe)
    program = serving.model("mlp").engine.host_program
    bucketer = serving.bucketer("mlp")
    sig = {shape: program.signature(inputs)
           for shape, inputs in inputs_by_shape.items()}
    # (3,5) and (4,7) round to the same (4, 8) ceilings; (2,2) does not.
    assert bucketer.bucket_key(sig[(3, 5)]) == \
        bucketer.bucket_key(sig[(4, 7)]) == (4, 8)
    assert bucketer.bucket_key(sig[(2, 2)]) == (2, 2)
    # Padding is per constraint class, to the bucket ceiling: both
    # members of the (4, 8) bucket pad to the identical signature.
    assert bucketer.padded_signature(sig[(3, 5)]) == \
        bucketer.padded_signature(sig[(4, 7)])
    assert bucketer.padded_signature(sig[(3, 5)])[0] == ("x", (4, 8, 32))
    # The exactly-at-ceiling member pays less padding than the smaller.
    assert bucketer.padding_waste(sig[(4, 7)]) < \
        bucketer.padding_waste(sig[(3, 5)])


def test_exact_policy_only_batches_equal_signatures(toy_exe,
                                                    inputs_by_shape):
    _, serving = make_batching(toy_exe,
                               batching=options(pad_policy="exact"))
    program = serving.model("mlp").engine.host_program
    bucketer = serving.bucketer("mlp")
    sig = {shape: program.signature(inputs)
           for shape, inputs in inputs_by_shape.items()}
    assert bucketer.bucket_key(sig[(3, 5)]) != \
        bucketer.bucket_key(sig[(4, 7)])
    for signature in sig.values():
        assert bucketer.padded_signature(signature) == signature
        assert bucketer.padding_waste(signature) == 0.0


def test_unknown_pad_policy_is_rejected(toy_exe):
    with pytest.raises(ValueError, match="pad_policy"):
        make_batching(toy_exe, batching=options(pad_policy="global"))


# ---------------------------------------------------------------------------
# batch formation: exact flush and completion times
# ---------------------------------------------------------------------------

def test_delay_flush_fires_at_exactly_max_queue_delay(toy_exe,
                                                      inputs_by_shape,
                                                      expected_by_shape):
    scheduler, serving = make_batching(toy_exe, batching=options())
    service_us = warm_batched(serving, inputs_by_shape[(3, 5)], 2)
    t1 = serving.submit("mlp", inputs_by_shape[(3, 5)])
    t2 = serving.submit("mlp", inputs_by_shape[(4, 7)])
    scheduler.run_until_idle()
    # Bucket opened at t=0, flushed at exactly DELAY_US, one batched
    # launch, both responses at exactly DELAY_US + the frozen plan cost.
    for ticket, shape in ((t1, (3, 5)), (t2, (4, 7))):
        response = ticket.response
        assert response.ok and response.path == "batched"
        assert response.finish_us == DELAY_US + service_us
        assert response.stats.details["batch"]["size"] == 2
        assert bit_identical(expected_by_shape[shape], response.outputs)
    assert serving.counters["batches_formed"] == 1
    assert serving.counters["batched_served"] == 2


def test_size_trigger_flushes_immediately(toy_exe, inputs_by_shape,
                                          expected_by_shape):
    scheduler, serving = make_batching(
        toy_exe, batching=options(max_batch_size=2))
    service_us = warm_batched(serving, inputs_by_shape[(3, 5)], 2)
    t1 = serving.submit("mlp", inputs_by_shape[(3, 5)])
    t2 = serving.submit("mlp", inputs_by_shape[(4, 7)])
    scheduler.run_until_idle()
    # The second member fills the bucket: flush at t=0, not DELAY_US.
    for ticket in (t1, t2):
        assert ticket.response.ok and ticket.response.path == "batched"
        assert ticket.response.finish_us == service_us
    assert serving.counters["batches_formed"] == 1


def test_incompatible_signature_opens_its_own_bucket(toy_exe,
                                                     inputs_by_shape,
                                                     expected_by_shape):
    scheduler, serving = make_batching(toy_exe, batching=options())
    warm_batched(serving, inputs_by_shape[(3, 5)], 2)
    tickets = {shape: serving.submit("mlp", inputs_by_shape[shape])
               for shape in [(3, 5), (4, 7), (2, 2)]}
    scheduler.run_until_idle()
    # (3,5)+(4,7) batch together; (2,2) flushes alone and serves solo.
    assert tickets[(3, 5)].response.path == "batched"
    assert tickets[(4, 7)].response.path == "batched"
    assert tickets[(2, 2)].response.path in ("fast", "fallback")
    for shape, ticket in tickets.items():
        assert bit_identical(expected_by_shape[shape],
                             ticket.response.outputs)
    assert serving.counters["batches_formed"] == 1


def test_lone_stream_behaves_like_the_unbatched_engine(toy_exe,
                                                       inputs_by_shape):
    """A single-request stream must produce the unbatched transcript,
    shifted only by the flush delay it waited in its bucket."""
    inputs = inputs_by_shape[(3, 5)]
    sched_a, batched = make_batching(toy_exe, batching=options())
    sched_b, plain = make_serving(toy_exe)
    ta = batched.submit("mlp", inputs)
    tb = plain.submit("mlp", inputs)
    sched_a.run_until_idle()
    sched_b.run_until_idle()
    assert ta.response.path == tb.response.path == "fallback"
    assert ta.response.finish_us == tb.response.finish_us + DELAY_US
    assert ta.response.outputs[0].tobytes() == \
        tb.response.outputs[0].tobytes()
    assert batched.counters["batches_formed"] == 0


# ---------------------------------------------------------------------------
# admission seams: shed before bucket placement, deadline inside a bucket
# ---------------------------------------------------------------------------

def test_deadline_expiring_in_bucket_times_out_at_exact_tick(
        toy_exe, inputs_by_shape):
    """A deadline shorter than the flush delay fires while the request
    sits in its bucket: the TIMEOUT goes out at exactly the deadline and
    the request never occupies a batch slot."""
    scheduler, serving = make_batching(toy_exe, batching=options())
    doomed = serving.submit("mlp", inputs_by_shape[(3, 5)],
                            deadline_us=500.0)
    survivor = serving.submit("mlp", inputs_by_shape[(4, 7)])
    scheduler.run_until_idle()
    assert doomed.response.status is ResponseStatus.TIMEOUT
    assert doomed.response.finish_us == 500.0
    # The survivor flushed alone at DELAY_US and served solo: the
    # expired member is gone from the bucket, so no batch formed.
    assert survivor.response.ok
    assert survivor.response.path in ("fast", "fallback")
    assert serving.counters["batches_formed"] == 0
    assert serving.counters["timeouts"] == 1


def test_whole_bucket_expiring_cancels_the_flush(toy_exe,
                                                 inputs_by_shape):
    scheduler, serving = make_batching(toy_exe, batching=options())
    tickets = [serving.submit("mlp", inputs_by_shape[(3, 5)],
                              deadline_us=100.0 + i)
               for i in range(2)]
    scheduler.run_until_idle()
    for ticket in tickets:
        assert ticket.response.status is ResponseStatus.TIMEOUT
    assert serving.counters["batches_formed"] == 0
    assert serving.stats()["batching"]["open_buckets"] == 0


def test_shed_decision_counts_bucketed_members(toy_exe, inputs_by_shape):
    """Admission control sees bucketed members as waiting: with
    queue_capacity=1, a second arrival is shed while the first sits in a
    bucket behind a busy server — never silently admitted into a batch."""
    scheduler, serving = make_batching(
        toy_exe, batching=options(), queue_capacity=1)
    # Occupy the server (solo request dispatches immediately after its
    # lone-bucket flush), then fill the one waiting slot, then overflow.
    first = serving.submit("mlp", inputs_by_shape[(2, 2)])
    scheduler.run_until(DELAY_US + 1.0)
    assert serving._current is not None
    second = serving.submit("mlp", inputs_by_shape[(3, 5)])
    third = serving.submit("mlp", inputs_by_shape[(4, 7)])
    scheduler.run_until_idle()
    assert first.response.ok
    assert second.response.ok
    assert third.response.status is ResponseStatus.SHED
    # The shed happened at admission: the bucket never saw the request.
    assert serving.counters["shed"] == 1
    assert serving.counters["batches_formed"] == 0


def test_deadline_during_batch_service_still_responds_timeout(
        toy_exe, inputs_by_shape):
    """A deadline that fires after the batch entered service produces a
    TIMEOUT at the exact deadline; the batch completion skips the dead
    member and serves the rest."""
    scheduler, serving = make_batching(toy_exe, batching=options())
    service_us = warm_batched(serving, inputs_by_shape[(3, 5)], 2)
    assert service_us > 10.0  # the mid-service deadline below must land
    doomed = serving.submit("mlp", inputs_by_shape[(3, 5)],
                            deadline_us=DELAY_US + service_us / 2)
    survivor = serving.submit("mlp", inputs_by_shape[(4, 7)])
    scheduler.run_until_idle()
    assert doomed.response.status is ResponseStatus.TIMEOUT
    assert doomed.response.finish_us == DELAY_US + service_us / 2
    assert survivor.response.ok and survivor.response.path == "batched"
    assert survivor.response.finish_us == DELAY_US + service_us
    assert serving.counters["batched_served"] == 1


# ---------------------------------------------------------------------------
# cold batches: explode now, batch later; quarantine pins to solo
# ---------------------------------------------------------------------------

def test_cold_batch_explodes_then_warms_to_batched(toy_exe,
                                                   inputs_by_shape,
                                                   expected_by_shape):
    scheduler, serving = make_batching(toy_exe, batching=options())
    wave1 = [serving.submit("mlp", inputs_by_shape[s])
             for s in [(3, 5), (4, 7)]]
    scheduler.run_until_idle()
    wave2 = [serving.submit("mlp", inputs_by_shape[s])
             for s in [(3, 5), (4, 7)]]
    scheduler.run_until_idle()
    # Cold: the batch exploded, members served on the solo fallback path
    # immediately — nobody waited on the batched compile.
    assert [t.response.path for t in wave1] == ["fallback", "fallback"]
    assert serving.counters["batches_exploded"] == 1
    # Warm: the background compile finished; the same mix batches.
    assert [t.response.path for t in wave2] == ["batched", "batched"]
    for ticket, shape in zip(wave1 + wave2,
                             [(3, 5), (4, 7), (3, 5), (4, 7)]):
        assert bit_identical(expected_by_shape[shape],
                             ticket.response.outputs)


def test_quarantined_batched_key_pins_bucket_to_solo(toy_exe,
                                                     inputs_by_shape):
    """Permanent faults on *batched* signatures only (rank is one higher
    than solo): the batched key quarantines, the bucket serves solo
    forever, solo compiles stay healthy, no response ever errors."""

    def batched_only_fault(model, signature, attempt):
        if len(signature[0][1]) == 4:  # x gains a leading batch dim
            raise PermanentCompileError("injected batched-plan fault")

    scheduler, serving = make_batching(toy_exe, batching=options(),
                                       compile_fault=batched_only_fault)
    waves = []
    for start in (0.0, 1e8, 2e8):
        scheduler.call_at(start, lambda: waves.append(
            [serving.submit("mlp", inputs_by_shape[s])
             for s in [(3, 5), (4, 7)]]))
    scheduler.run_until_idle()
    assert serving.counters["batched_served"] == 0
    assert serving.counters["batches_exploded"] == 3
    assert [t.response.path for t in waves[0]] == ["fallback", "fallback"]
    # Solo plans compiled fine, so later explosions serve warm.
    for wave in waves[1:]:
        assert [t.response.path for t in wave] == ["fast", "fast"]
    assert len(serving.quarantined_signatures()) == 1


# ---------------------------------------------------------------------------
# observability: histograms + batch spans
# ---------------------------------------------------------------------------

def test_batch_metrics_and_spans_are_recorded(toy_exe, inputs_by_shape):
    from repro.serving import VirtualScheduler

    scheduler = VirtualScheduler(seed=0)
    tracer = Tracer(clock=scheduler.clock, metrics=MetricsRegistry())
    from repro.serving import (BatchingServingEngine, ServingOptions)
    from .conftest import FAST_COMPILE

    serving = BatchingServingEngine(
        A10, scheduler,
        ServingOptions(compile_cost=FAST_COMPILE),
        batching=options(), tracer=tracer)
    serving.register_model("mlp", toy_exe)
    warm_batched(serving, inputs_by_shape[(3, 5)], 2)
    for shape in [(3, 5), (4, 7)]:
        serving.submit("mlp", inputs_by_shape[shape])
    scheduler.run_until_idle()

    metrics = tracer.metrics
    assert metrics.histogram("serving.batch.size").count == 1
    assert metrics.histogram("serving.batch.size").mean == 2.0
    assert metrics.histogram("serving.batch.queue_delay_us").count == 2
    waste = metrics.histogram("serving.batch.padding_waste_frac")
    assert waste.count == 2 and 0.0 < waste.mean < 1.0
    names = tracer.spans.names()
    assert names.count("batch:enqueue") == 2
    assert names.count("batch:flush") == 1
    assert "batch:launch" in names


# ---------------------------------------------------------------------------
# determinism: 50 seeds, exact transcript replay
# ---------------------------------------------------------------------------

SEEDS = list(range(50))
SHAPES = [(3, 5), (3, 5), (4, 7), (3, 5), (2, 2), (4, 7), (3, 5), (2, 2)]


def run_scenario(toy_exe, seed, inputs_by_shape):
    from repro.fuzz import CompileFaultInjector

    fault = CompileFaultInjector(transient_attempts=1, permanent_every=4)
    scheduler, serving = make_batching(
        toy_exe, seed=seed, compile_fault=fault, queue_capacity=4,
        compile_backoff_us=2_000.0,
        batching=options(max_batch_size=3))
    tickets = []

    def submit(shape, deadline_us):
        tickets.append((shape, serving.submit(
            "mlp", inputs_by_shape[shape], deadline_us=deadline_us)))

    # Simultaneous arrivals at t=0 (seed permutes the order, which
    # decides bucket membership), a mid-flight wave, a deadline that
    # expires inside its bucket, and a warm wave that must batch.
    for shape in SHAPES[:3]:
        scheduler.call_at(0.0, lambda s=shape: submit(s, None))
    for shape in SHAPES[3:6]:
        scheduler.call_at(800.0, lambda s=shape: submit(s, None))
    scheduler.call_at(900.0, lambda: submit((3, 5), 300.0))
    for shape in SHAPES[6:]:
        scheduler.call_at(1e8, lambda s=shape: submit(s, None))
    scheduler.run_until_idle()
    return serving, tickets


def transcript(serving, tickets):
    """Everything observable: per-request outcome AND batch membership
    (which launch served a request shows in the batch detail block)."""
    rows = []
    for _, ticket in tickets:
        response = ticket.response
        batch = None
        if response.stats is not None:
            batch = response.stats.details.get("batch")
            batch = (batch["size"], batch["padded_signature"]) \
                if batch else None
        rows.append((ticket.request.id, response.status.value,
                     response.path, response.finish_us, batch))
    rows.append(("counters",
                 tuple(sorted(serving.counters.items()))))
    return tuple(rows)


@pytest.mark.parametrize("seed", SEEDS)
def test_seed_upholds_batching_invariants(toy_exe, seed, inputs_by_shape,
                                          expected_by_shape):
    serving, tickets = run_scenario(toy_exe, seed, inputs_by_shape)
    assert len(tickets) == 9
    for shape, ticket in tickets:
        response = ticket.response
        assert response is not None, "request fell through the cracks"
        assert response.status in (ResponseStatus.OK,
                                   ResponseStatus.TIMEOUT,
                                   ResponseStatus.SHED)
        if response.status is ResponseStatus.OK:
            assert bit_identical(expected_by_shape[shape],
                                 response.outputs), \
                f"seed {seed}: {response.path} path diverged"
    counters = serving.counters
    assert counters["ok"] + counters["shed"] + counters["timeouts"] == 9
    # The warm wave at t=1e8 pairs (3,5)+(2,2)... distinct buckets — but
    # every earlier (3,5)/(4,7) pair that met in a bucket batched, so at
    # least one batch formed unless sheds/timeouts starved the buckets.
    assert counters["batches_formed"] >= 1 or counters["shed"] >= 2


@pytest.mark.parametrize("seed", [0, 17, 43])
def test_same_seed_reproduces_the_exact_transcript(toy_exe, seed,
                                                   inputs_by_shape):
    a_serving, a = run_scenario(toy_exe, seed, inputs_by_shape)
    b_serving, b = run_scenario(toy_exe, seed, inputs_by_shape)
    assert transcript(a_serving, a) == transcript(b_serving, b)


def test_seeds_explore_distinct_interleavings(toy_exe, inputs_by_shape):
    transcripts = set()
    for seed in SEEDS[:10]:
        serving, tickets = run_scenario(toy_exe, seed, inputs_by_shape)
        transcripts.add(transcript(serving, tickets))
    assert len(transcripts) > 1, \
        "seed sweep is vacuous: every seed produced one interleaving"


# ---------------------------------------------------------------------------
# memory budget: proven caps on pad ceilings and batch sizes
# ---------------------------------------------------------------------------

def proven_toy(batch_hi=12, seq_hi=48):
    from repro.core import compile_graph
    from repro.core.pipeline import CompileOptions

    from ..conftest import toy_mlp_graph

    return compile_graph(toy_mlp_graph().graph, CompileOptions(
        assume_ranges={"batch": (1, batch_hi), "seq": (1, seq_hi)}))


def big_budget():
    from repro.runtime import MemoryBudget

    return MemoryBudget(1 << 40)


def test_budget_caps_bucket_ceilings_at_proven_class_maxima(rng=None):
    """pow2 padding past the proven class range burns bytes no request
    can ever need: with a budget declared, the ceilings clamp to the
    interval maxima (batch <= 12, seq <= 48)."""
    exe = proven_toy()
    _, serving = make_batching(exe, batching=options(
        memory_budget=big_budget()))
    bucketer = serving.bucketer("mlp")
    assert bucketer.class_caps == (12, 48)
    # Stock pow2 would jump 9 -> 16 and 33 -> 64; the caps stop that.
    assert bucketer.class_ceiling(0, 9) == 12
    assert bucketer.class_ceiling(1, 33) == 48
    # Below the cap the stock schedule is untouched.
    assert bucketer.class_ceiling(0, 3) == 4
    assert bucketer.class_ceiling(1, 17) == 32


def test_budget_capped_bucketer_passes_the_l604_audit():
    """The clamp must stay an upper bound of every in-class value —
    the padding analyzer proves it over the declared intervals."""
    from repro.core.symbolic.intervals import derive_intervals
    from repro.lint import check_bucket_padding

    exe = proven_toy()
    _, serving = make_batching(exe, batching=options(
        memory_budget=big_budget()))
    imap = derive_intervals(exe.graph,
                            assume_ranges={"batch": (1, 12),
                                           "seq": (1, 48)})
    sink = check_bucket_padding(serving.bucketer("mlp"), imap)
    assert not sink.codes(), sink.render()


def test_budget_tightens_the_configured_batch_limit():
    from repro.runtime import MemoryBudget

    exe = proven_toy()
    symbolic = exe.symbolic_plan
    hi = symbolic.peak_hi_bytes()
    fits_two = MemoryBudget(symbolic.constant_bytes + 2 * hi + hi // 2)
    _, serving = make_batching(exe, batching=options(
        max_batch_size=4, memory_budget=fits_two))
    assert serving.max_batch_for("mlp") == 2
    # A generous budget leaves the configured limit in charge.
    _, roomy = make_batching(exe, batching=options(
        max_batch_size=4, memory_budget=big_budget()))
    assert roomy.max_batch_for("mlp") == 4


def test_budget_too_small_for_one_member_fails_registration():
    from repro.runtime import MemoryBudget

    exe = proven_toy()
    starved = MemoryBudget(max(exe.symbolic_plan.constant_bytes, 1))
    with pytest.raises(ValueError, match="does not fit"):
        make_batching(exe, batching=options(memory_budget=starved))


def test_unproven_plan_leaves_batching_unconstrained(toy_exe):
    """No finite proven peak -> no cap; the configured limit applies
    and registration succeeds ("cannot prove" is never "does not
    fit")."""
    from repro.runtime import MemoryBudget

    _, serving = make_batching(toy_exe, batching=options(
        max_batch_size=4, memory_budget=MemoryBudget(1)))
    assert serving.max_batch_for("mlp") == 4
    caps = serving.bucketer("mlp").class_caps
    assert caps is None or all(cap is None for cap in caps)
    # Uncapped ceilings follow the stock pow2 schedule.
    assert serving.bucketer("mlp").class_ceiling(0, 9) == 16


def test_capped_batches_never_exceed_the_proven_limit(inputs_by_shape,
                                                      expected_by_shape):
    """Behavioral: with a two-member budget cap and four co-bucketable
    arrivals, every launch holds at most two members and every response
    stays bit-identical."""
    from repro.runtime import MemoryBudget

    exe = proven_toy()
    symbolic = exe.symbolic_plan
    hi = symbolic.peak_hi_bytes()
    fits_two = MemoryBudget(symbolic.constant_bytes + 2 * hi + hi // 2)
    scheduler, serving = make_batching(exe, batching=options(
        max_batch_size=4, memory_budget=fits_two))
    warm_batched(serving, inputs_by_shape[(3, 5)], 2)
    engine = ExecutionEngine(exe, A10)
    tickets = []
    for _ in range(2):
        tickets.append(serving.submit("mlp", inputs_by_shape[(3, 5)]))
        tickets.append(serving.submit("mlp", inputs_by_shape[(4, 7)]))
    scheduler.run_until_idle()
    for ticket in tickets:
        response = ticket.response
        assert response.ok
        batch = response.stats.details.get("batch")
        if batch is not None:
            assert batch["size"] <= 2
        shape = (3, 5) if ticket.request.inputs \
            is inputs_by_shape[(3, 5)] else (4, 7)
        assert bit_identical(engine.run(inputs_by_shape[shape])[0],
                             response.outputs)
    assert serving.counters["batched_served"] >= 2
