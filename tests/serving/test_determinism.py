"""50 distinct interleaving seeds, zero flakes, zero real sleeps.

One mixed scenario — simultaneous arrivals, shape diversity, deadlines,
a bounded queue, transient and permanent compile faults — runs once per
seed.  Per seed the runtime must uphold every invariant (only OK /
TIMEOUT / SHED statuses, OK outputs bit-identical to a direct engine
run, quarantine never re-compiling); per *pair* of runs with the same
seed the transcript must match event for event.  Distinct seeds really
do explore distinct interleavings — that is asserted too, otherwise the
sweep proves nothing.
"""

import numpy as np
import pytest

from repro.device import A10
from repro.fuzz import CompileFaultInjector
from repro.runtime import ExecutionEngine
from repro.serving import ResponseStatus

from ..conftest import toy_mlp_inputs
from .conftest import bit_identical, make_serving

SEEDS = list(range(50))

#: (batch, seq) of each submission; three signatures, repeated.
SHAPES = [(3, 5), (3, 5), (4, 7), (3, 5), (2, 2), (4, 7), (3, 5), (2, 2)]


def run_scenario(toy_exe, seed, inputs_by_shape):
    fault = CompileFaultInjector(transient_attempts=1, permanent_every=3)
    scheduler, serving = make_serving(
        toy_exe, seed=seed, compile_fault=fault, queue_capacity=3,
        compile_backoff_us=2_000.0)
    tickets = []

    def submit(shape, deadline_us):
        tickets.append((shape, serving.submit(
            "mlp", inputs_by_shape[shape], deadline_us=deadline_us)))

    # Three *simultaneous* arrival events at t=0 (the seed permutes
    # them), then a second wave mid-flight, a tight-deadline straggler,
    # and a warm wave after everything settles.
    for shape in SHAPES[:3]:
        scheduler.call_at(0.0, lambda s=shape: submit(s, None))
    for i, shape in enumerate(SHAPES[3:6]):
        scheduler.call_at(400.0, lambda s=shape: submit(s, None))
    scheduler.call_at(500.0, lambda: submit((3, 5), 80.0))
    for shape in SHAPES[6:]:
        scheduler.call_at(60_000.0, lambda s=shape: submit(s, None))
    scheduler.run_until_idle()
    return serving, tickets


def transcript(tickets):
    return tuple(
        (t.request.id, t.response.status.value, t.response.path,
         t.response.finish_us)
        for _, t in tickets)


@pytest.fixture(scope="module")
def inputs_by_shape():
    rng = np.random.default_rng(99)
    return {(b, s): toy_mlp_inputs(rng, b, s)
            for b, s in set(SHAPES)}


@pytest.fixture(scope="module")
def expected_by_shape(toy_exe, inputs_by_shape):
    engine = ExecutionEngine(toy_exe, A10)
    return {shape: engine.run(inputs)[0]
            for shape, inputs in inputs_by_shape.items()}


@pytest.mark.parametrize("seed", SEEDS)
def test_seed_upholds_all_invariants(toy_exe, seed, inputs_by_shape,
                                     expected_by_shape):
    serving, tickets = run_scenario(toy_exe, seed, inputs_by_shape)
    assert len(tickets) == 9
    for shape, ticket in tickets:
        response = ticket.response
        assert response is not None, "request fell through the cracks"
        assert response.status in (ResponseStatus.OK,
                                   ResponseStatus.TIMEOUT,
                                   ResponseStatus.SHED)
        if response.status is ResponseStatus.OK:
            assert bit_identical(expected_by_shape[shape],
                                 response.outputs), \
                f"seed {seed}: {response.path} path diverged"
    counters = serving.counters
    assert counters["ok"] + counters["shed"] + counters["timeouts"] == 9
    # permanent_every=3 quarantines exactly the third distinct signature.
    assert serving.pool.stats.quarantined == 1
    assert serving.pool.stats.transient_failures >= 1


@pytest.mark.parametrize("seed", [0, 17, 43])
def test_same_seed_reproduces_the_exact_transcript(toy_exe, seed,
                                                   inputs_by_shape):
    _, first = run_scenario(toy_exe, seed, inputs_by_shape)
    _, second = run_scenario(toy_exe, seed, inputs_by_shape)
    assert transcript(first) == transcript(second)


def test_seeds_explore_distinct_interleavings(toy_exe, inputs_by_shape):
    transcripts = set()
    for seed in SEEDS[:10]:
        _, tickets = run_scenario(toy_exe, seed, inputs_by_shape)
        transcripts.add(transcript(tickets))
    assert len(transcripts) > 1, \
        "50-seed sweep is vacuous: every seed produced one interleaving"
