"""Path selection: cold-start fallback, warm handoff, coalescing."""

import numpy as np

from repro.device import A10
from repro.runtime import ExecutionEngine
from repro.serving import CompileState, SignatureCompileCost

from ..conftest import toy_mlp_inputs
from .conftest import bit_identical, make_serving


def test_cold_start_serves_on_fallback(toy_exe, rng):
    scheduler, serving = make_serving(toy_exe, seed=1)
    inputs = toy_mlp_inputs(rng, 3, 5)
    ticket = serving.submit("mlp", inputs)
    scheduler.run_until_idle()
    response = ticket.response
    assert response.ok and response.path == "fallback"
    assert serving.pool.stats.jobs_submitted == 1
    expected, _ = ExecutionEngine(toy_exe, A10).run(inputs)
    assert bit_identical(expected, response.outputs)


def test_background_compile_installs_the_plan(toy_exe, rng):
    scheduler, serving = make_serving(toy_exe, seed=1)
    inputs = toy_mlp_inputs(rng, 3, 5)
    ticket = serving.submit("mlp", inputs)
    signature = ticket.request.signature
    entry = serving.model("mlp")
    assert entry.engine.peek_plan(signature) is None
    scheduler.run_until_idle()
    assert entry.engine.peek_plan(signature) is not None
    assert serving.compile_state("mlp", signature) is CompileState.READY


def test_warm_signature_takes_the_fast_path(toy_exe, rng):
    scheduler, serving = make_serving(toy_exe, seed=1)
    inputs = toy_mlp_inputs(rng, 3, 5)
    serving.submit("mlp", inputs)
    scheduler.run_until_idle()
    ticket = serving.submit("mlp", inputs)
    scheduler.run_until_idle()
    assert ticket.response.path == "fast"
    # The fast path replays the frozen plan: far cheaper than eager.
    fallback_latency = serving.completed[0].latency_us
    assert ticket.response.latency_us < fallback_latency / 5


def test_in_flight_compiles_coalesce(toy_exe, rng):
    scheduler, serving = make_serving(toy_exe, seed=1)
    inputs = toy_mlp_inputs(rng, 3, 5)
    for _ in range(3):
        serving.submit("mlp", inputs)
    scheduler.run_until_idle()
    stats = serving.pool.stats
    assert stats.jobs_submitted == 1
    assert stats.jobs_coalesced == 2
    assert stats.compiles_succeeded == 1


def test_distinct_signatures_compile_independently(toy_exe, rng):
    scheduler, serving = make_serving(toy_exe, seed=1)
    serving.submit("mlp", toy_mlp_inputs(rng, 3, 5))
    serving.submit("mlp", toy_mlp_inputs(rng, 4, 7))
    scheduler.run_until_idle()
    assert serving.pool.stats.jobs_submitted == 2
    assert serving.pool.stats.compiles_succeeded == 2


def test_handoff_mid_queue_when_compile_finishes_first(toy_exe, rng):
    """A request queued behind a slow fallback service finds the plan
    already installed by the time it is dispatched → fast path."""
    scheduler, serving = make_serving(
        toy_exe, seed=1,
        compile_cost=SignatureCompileCost(fixed_us=50.0,
                                          per_kernel_us=1.0))
    inputs = toy_mlp_inputs(rng, 3, 5)
    first = serving.submit("mlp", inputs)
    second = serving.submit("mlp", inputs)
    scheduler.run_until_idle()
    assert first.response.path == "fallback"
    assert second.response.path == "fast"


def test_bounded_workers_serialize_compiles(toy_exe, rng):
    """One worker: three distinct signatures finish compilation at
    duration, 2*duration, 3*duration — never in parallel."""
    scheduler, serving = make_serving(toy_exe, seed=1, compile_workers=1)
    duration = serving.model("mlp").compile_duration_us
    signatures = []
    for batch in (2, 3, 4):
        ticket = serving.submit("mlp", toy_mlp_inputs(rng, batch, 5))
        signatures.append(ticket.request.signature)
    scheduler.run_until_idle()
    finishes = sorted(
        serving.pool.record(("mlp", sig)).finished_at_us
        for sig in signatures)
    assert finishes == [
        duration, 2 * duration, 3 * duration]


def test_evicted_plan_resubmits_compile(toy_exe, rng):
    from repro.runtime import EngineOptions
    scheduler, serving = make_serving(
        toy_exe, seed=1, engine=EngineOptions(plan_capacity=1))
    inputs_a = toy_mlp_inputs(rng, 3, 5)
    inputs_b = toy_mlp_inputs(rng, 4, 7)
    serving.submit("mlp", inputs_a)
    scheduler.run_until_idle()
    serving.submit("mlp", inputs_b)  # evicts A's plan (capacity 1)
    scheduler.run_until_idle()
    ticket = serving.submit("mlp", inputs_a)  # cold again
    scheduler.run_until_idle()
    assert ticket.response.path == "fallback"
    assert serving.pool.stats.jobs_submitted == 3
    assert ticket.response.ok
