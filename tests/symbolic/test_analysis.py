"""Graph-level shape analysis: per-op constraint collection and levels."""

from repro.core.symbolic import ConstraintLevel, analyze_shapes
from repro.ir import GraphBuilder, f32, i64

from ..conftest import toy_mlp_graph


def test_elementwise_propagates_equality():
    b = GraphBuilder("g")
    s1, s2 = b.sym("s1"), b.sym("s2")
    x = b.parameter("x", (s1, 8), f32)
    y = b.parameter("y", (s1, 8), f32)
    z = b.add(x, y)
    # reshape z into a fresh symbol row count, then the analysis knows
    # nothing new; but add asserts s1 == s1 trivially.
    b.outputs(z)
    an = analyze_shapes(b.graph)
    assert an.dims_equal(s1, s1)
    assert not an.dims_equal(s1, s2)


def test_dot_contraction_equality():
    b = GraphBuilder("g")
    s, t = b.sym("s"), b.sym("t")
    x = b.parameter("x", (s, 32), f32)
    w = b.parameter("w", (32, 16), f32)
    out = b.dot(x, w)
    b.outputs(out)
    an = analyze_shapes(b.graph)
    # out rows == s
    assert an.dims_equal(out.shape[0], s)


def test_transpose_permutes_equalities():
    b = GraphBuilder("g")
    s = b.sym("s")
    x = b.parameter("x", (s, 4, 8), f32)
    t = b.transpose(x, (2, 0, 1))
    b.outputs(t)
    an = analyze_shapes(b.graph)
    assert an.dims_equal(t.shape[1], s)


def test_reduce_keeps_nonreduced_dims():
    b = GraphBuilder("g")
    s = b.sym("s")
    x = b.parameter("x", (s, 4, 8), f32)
    r = b.reduce_sum(x, axes=2)
    b.outputs(r)
    an = analyze_shapes(b.graph)
    assert an.dims_equal(r.shape[0], s)


def test_reshape_product_equality_full_level_only():
    b = toy_mlp_graph()
    x_shape = b.graph.param_named("x").shape
    bs = b.sym("bs")
    full = analyze_shapes(b.graph, ConstraintLevel.FULL)
    assert full.same_num_elements(x_shape, (bs, 32))
    equality = analyze_shapes(b.graph, ConstraintLevel.EQUALITY)
    assert not equality.same_num_elements(x_shape, (bs, 32))
    none = analyze_shapes(b.graph, ConstraintLevel.NONE)
    assert not none.same_num_elements(x_shape, (bs, 32))


def test_none_level_is_structural():
    b = GraphBuilder("g")
    s = b.sym("s", hint=16)
    x = b.parameter("x", (s, 8), f32)
    b.outputs(b.relu(x))
    an = analyze_shapes(b.graph, ConstraintLevel.NONE)
    assert an.dims_equal(s, s)
    assert an.shapes_equal((s, 8), (s, 8))
    assert an.likely_value(s) == 16  # hints still flow at NONE


def test_broadcast_constrains_stretched_dims():
    b = GraphBuilder("g")
    s, t = b.sym("s"), b.sym("t")
    v = b.parameter("v", (t,), f32)
    x = b.parameter("x", (s, t), f32)
    out = b.add(x, b.broadcast_in_dim(v, (s, t), (1,)))
    b.outputs(out)
    an = analyze_shapes(b.graph)
    assert an.dims_equal(out.shape[0], s)
    assert an.dims_equal(out.shape[1], t)


def test_gather_output_dims():
    b = GraphBuilder("g")
    s = b.sym("s")
    table = b.parameter("table", (100, 16), f32)
    ids = b.parameter("ids", (s,), i64)
    g = b.gather(table, ids)
    b.outputs(g)
    an = analyze_shapes(b.graph)
    assert an.dims_equal(g.shape[0], s)


def test_likely_num_elements_uses_hints():
    b = GraphBuilder("g")
    s = b.sym("s", hint=10)
    x = b.parameter("x", (s, 8), f32)
    b.outputs(b.relu(x))
    an = analyze_shapes(b.graph)
    assert an.likely_num_elements((s, 8)) == 80
    assert an.likely_num_elements((b.sym("unknown"), 8)) == 8


def test_analysis_summary_fields():
    b = toy_mlp_graph()
    an = analyze_shapes(b.graph)
    summary = an.summary()
    assert summary["level"] == "full"
    assert summary["product_facts"] >= 1
    assert summary["analysis_time_s"] >= 0
