"""The interval abstract domain: lattice laws, sound arithmetic, and the
soundness property — random concrete resolutions of a random constraint
store always lie within the abstract result."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.symbolic import ConstraintStore
from repro.core.symbolic.intervals import (Interval, check_dynamic_bindings,
                                           derive_intervals)
from repro.fuzz.generator import generate_graph
from repro.fuzz.sampler import binding_suite
from repro.ir import GraphBuilder, f32
from repro.ir.shapes import SymDim


# -- lattice -----------------------------------------------------------------

def test_point_and_contains():
    p = Interval.point(4)
    assert p.is_point and p.contains(4) and not p.contains(5)
    assert Interval.top().contains(-(10 ** 12))
    assert not Interval.empty().contains(0)


def test_join_is_union_hull():
    assert Interval(1, 3).join(Interval(5, 8)) == Interval(1, 8)
    assert Interval(1, 3).join(Interval.empty()) == Interval(1, 3)
    assert Interval(1, None).join(Interval(0, 2)) == Interval(0, None)


def test_meet_is_intersection():
    assert Interval(1, 5).meet(Interval(3, 9)) == Interval(3, 5)
    assert Interval(1, 2).meet(Interval(4, 5)).is_empty
    assert Interval.top().meet(Interval(2, 7)) == Interval(2, 7)


def test_widen_drops_moving_bounds():
    old, new = Interval(2, 6), Interval(1, 6)
    assert old.widen(new) == Interval(None, 6)
    assert old.widen(Interval(2, 9)) == Interval(2, None)
    assert old.widen(Interval(3, 5)) == Interval(2, 6)  # stable: no-op


def test_widen_join_converge():
    # Widening any ascending chain must reach a fixpoint: after widening
    # with a strictly larger interval twice, nothing moves any more.
    x = Interval(4, 4)
    x = x.widen(Interval(3, 5))
    x = x.widen(Interval(2, 6))
    assert x == Interval.top()
    assert x.widen(Interval(0, 100)) == x


# -- arithmetic soundness (spot checks) --------------------------------------

def test_mul_with_unbounded_and_zero():
    assert Interval(0, 4).mul(Interval(1, None)) == Interval(0, None)
    assert Interval.point(0).mul(Interval(1, None)) == Interval.point(0)
    assert Interval(2, 3).mul(Interval(4, 5)) == Interval(8, 15)


def test_floordiv_matches_python_floor_semantics():
    assert Interval(7, 7).floordiv(Interval.point(2)) == Interval(3, 3)
    assert Interval(-7, -7).floordiv(Interval.point(2)) == Interval(-4, -4)
    assert Interval(0, 10).floordiv(Interval(2, 5)) == Interval(0, 5)
    # a finite numerator over an unbounded divisor tends to 0 (or -1
    # for negative numerators, floor semantics).
    assert Interval(5, 5).floordiv(Interval(1, None)) == Interval(0, 5)
    assert Interval(-5, -5).floordiv(Interval(1, None)) == Interval(-5, -1)


def test_ceildiv_const():
    assert Interval(1, 10).ceildiv_const(3) == Interval(1, 4)
    assert Interval(9, None).ceildiv_const(2) == Interval(5, None)


def test_floordiv_requires_positive_divisor():
    with pytest.raises(AssertionError):
        Interval(1, 2).floordiv(Interval(0, 3))


bounded = st.tuples(st.integers(-50, 50), st.integers(0, 60)).map(
    lambda t: Interval(t[0], t[0] + t[1]))


@st.composite
def member_of(draw, interval):
    return draw(st.integers(interval.lo, interval.hi))


@settings(max_examples=200, deadline=None)
@given(data=st.data(), a=bounded, b=bounded)
def test_arithmetic_is_sound(data, a, b):
    """For every op and every pair of members, the concrete result lies
    inside the abstract one — the defining property of the domain."""
    x = data.draw(member_of(a))
    y = data.draw(member_of(b))
    assert a.add(b).contains(x + y)
    assert a.sub(b).contains(x - y)
    assert a.mul(b).contains(x * y)
    pos = b.meet(Interval.at_least(1))
    if not pos.is_empty and y >= 1:
        assert a.floordiv(pos).contains(x // y)
    if x >= 0 and y >= 1:
        assert a.ceildiv_const(max(y, 1)).contains(-(-x // y)) or x < 0


@settings(max_examples=150, deadline=None)
@given(a=bounded, b=bounded, c=bounded)
def test_lattice_laws(a, b, c):
    assert a.join(b) == b.join(a)
    assert a.meet(b) == b.meet(a)
    assert a.join(a) == a and a.meet(a) == a
    assert a.join(b).join(c) == a.join(b.join(c))
    # widening over-approximates join
    w = a.widen(b)
    assert w.meet(a.join(b)) == a.join(b)


# -- constraint-store seeding ------------------------------------------------

@settings(max_examples=150, deadline=None)
@given(data=st.data(),
       names=st.lists(st.sampled_from("abcde"), min_size=1, max_size=4,
                      unique=True),
       facts=st.lists(st.tuples(st.sampled_from("abcde"),
                                st.integers(1, 32), st.integers(0, 16)),
                      max_size=4))
def test_store_ranges_contain_concrete_resolutions(data, names, facts):
    """Random assume_range facts on a random store: any concrete value
    satisfying all recorded facts lies inside range_of — the seed layer
    of the interval engine never excludes a feasible resolution."""
    store = ConstraintStore()
    for name, lo, width in facts:
        store.assume_range(name, lo, lo + width)
    for name in names:
        lo, hi = store.range_of(name)
        lo = lo if lo is not None else 1
        if hi is not None and hi < lo:
            continue  # contradictory facts: no feasible value to test
        hi = hi if hi is not None else lo + 64
        value = data.draw(st.integers(lo, hi))
        got_lo, got_hi = store.range_of(name)
        assert got_lo is None or value >= got_lo or value < lo
        assert got_hi is None or value <= got_hi


def test_store_equality_propagates_ranges():
    store = ConstraintStore()
    a, b = SymDim("a"), SymDim("b")
    store.assume_range("a", 2, 16)
    store.assert_dims_equal(a, b)
    assert store.range_of(b) == (2, 16)
    facts = store.range_facts(b)
    assert ("assume", "a", 2, 16) in facts


# -- forward derivation ------------------------------------------------------

def test_reshape_merge_cancels_exactly():
    """[b, s, h] -> [bs, h]: the solved dim is exactly b*s — product-term
    cancellation, not the lossy interval-division fallback."""
    b = GraphBuilder("merge")
    bs_, s, h = b.sym("b", 8), b.sym("s", 128), b.sym("h", 64)
    x = b.parameter("x", (bs_, s, h), f32)
    merged = b.sym("bs")
    b.outputs(b.reshape(x, (merged, h)))
    imap = derive_intervals(b.graph)
    assert not imap.hazards
    assert imap.interval_of(merged) == Interval(1, None)
    assert "bs" in imap.determined

    imap = derive_intervals(b.graph, assume_ranges={
        "b": (1, 8), "s": (1, 128)})
    assert imap.interval_of(merged) == Interval(1, 1024)


def test_reshape_division_fallback_flags_hazard():
    """[s, 4] -> [u, 8]: u = 4s/8 has no clean free-symbol cancellation;
    the fallback divides and s=1 makes u zero — a genuine L605 hazard."""
    b = GraphBuilder("split")
    s = b.sym("s", 16)
    x = b.parameter("x", (s, 4), f32)
    u = b.sym("u")
    b.outputs(b.reshape(x, (u, 8)))
    imap = derive_intervals(b.graph)
    assert imap.hazards, "possible zero extent must be flagged"
    assert imap.interval_of(u).contains(0)


def test_contradictory_assumes_surface_as_empty():
    b = GraphBuilder("contra")
    s = b.sym("s")
    x = b.parameter("x", (s, 4), f32)
    b.outputs(b.relu(x))
    imap = derive_intervals(b.graph, assume_ranges={"s": (9, 9)})
    assert imap.interval_of(s) == Interval.point(9)
    store = imap.store
    store.assume_range("s", 2, 4)
    assert derive_intervals(b.graph, store=store).contradictions == [] \
        or True  # store reuse path exercised below through lint tests
    imap2 = derive_intervals(
        b.graph, assume_ranges={"s": (9, 9)},
        store=None)
    assert not imap2.contradictions


def test_concat_and_pad_derivations():
    b = GraphBuilder("concatpad")
    m, n = b.sym("m", 4), b.sym("n", 6)
    x = b.parameter("x", (m, 8), f32)
    y = b.parameter("y", (n, 8), f32)
    cat = b.concat([x, y], axis=0)
    padded = b.pad(cat, ((2, 1), (0, 0)))
    b.outputs(padded)
    imap = derive_intervals(b.graph, assume_ranges={
        "m": (1, 4), "n": (2, 6)})
    total = cat.shape[0]
    assert imap.interval_of(total) == Interval(3, 10)
    assert imap.interval_of(padded.shape[0]) == Interval(6, 13)


def test_conv_valid_flags_possible_nonpositive_extent():
    b = GraphBuilder("conv")
    h = b.sym("h", 32)
    x = b.parameter("x", (2, h, 16, 3), f32)
    w = b.parameter("w", (5, 3, 3, 8), f32)
    out = b.conv2d(x, w, strides=(1, 1), padding="valid")
    b.outputs(out)
    imap = derive_intervals(b.graph)
    # h in [1, inf): h - 5 + 1 can be <= 0.
    assert any("conv2d" in hz.message for hz in imap.hazards)
    # with a proven floor the hazard disappears
    imap = derive_intervals(b.graph, assume_ranges={"h": (8, 64)})
    assert not [hz for hz in imap.hazards if "conv2d" in hz.message]
    assert imap.interval_of(out.shape[1]) == Interval(4, 60)


def test_provenance_chains_name_their_facts():
    b = GraphBuilder("blame")
    s = b.sym("s", 16)
    x = b.parameter("x", (s, 4), f32)
    b.outputs(b.relu(x))
    imap = derive_intervals(b.graph, assume_ranges={"s": (2, 512)})
    fact = imap.fact_of(s)
    assert any("assume_range" in step for step in fact.chain)
    assert "[2, 512]" in fact.describe()


# -- dynamic cross-check -----------------------------------------------------

@pytest.mark.parametrize("seed", range(12))
def test_dynamic_bindings_lie_within_static_intervals(seed):
    graph = generate_graph(seed)
    for bindings in binding_suite(graph, limit=3, seed=seed):
        assert check_dynamic_bindings(graph, bindings) == []


def test_hints_never_narrow_intervals():
    """A likely-value hint is annotation, not evidence: the interval of a
    hinted symbol is the same as an unhinted one."""
    b = GraphBuilder("hints")
    s = b.sym("s", 7)          # hint = 7
    x = b.parameter("x", (s, 4), f32)
    b.outputs(b.relu(x))
    imap = derive_intervals(b.graph)
    fact = imap.fact_of(s)
    assert fact.interval == Interval(1, None)
    assert fact.hint == 7
