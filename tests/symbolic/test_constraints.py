"""The constraint store: dim equality, product equality, likely values."""

import pytest

from repro.core.symbolic import ConstraintStore, ContradictionError
from repro.core.symbolic.constraints import product_term
from repro.ir.shapes import SymDim


def syms(*names):
    return tuple(SymDim(n) for n in names)


def test_dim_equality_basics():
    store = ConstraintStore()
    a, b = syms("a", "b")
    assert not store.dims_equal(a, b)
    store.assert_dims_equal(a, b)
    assert store.dims_equal(a, b)
    assert store.dims_equal(b, a)


def test_dim_equality_with_constant():
    store = ConstraintStore()
    (a,) = syms("a")
    store.assert_dims_equal(a, 8)
    assert store.dims_equal(a, 8)
    assert store.resolve_dim(a) == 8
    assert store.likely_value(a) == 8


def test_shapes_equal():
    store = ConstraintStore()
    a, b, c = syms("a", "b", "c")
    store.assert_dims_equal(a, b)
    assert store.shapes_equal((a, 4), (b, 4))
    assert not store.shapes_equal((a, 4), (c, 4))
    assert not store.shapes_equal((a,), (a, 4))


def test_rank_mismatch_assert_raises():
    store = ConstraintStore()
    with pytest.raises(ContradictionError):
        store.assert_shapes_equal((4,), (4, 4))


def test_product_term_canonical():
    a, b = syms("a", "b")
    assert product_term((a, 4, b)) == (4, ("a", "b"))
    assert product_term((b, a, 4)) == product_term((a, b, 4))
    assert product_term((2, 3)) == (6, ())


def test_product_equality_from_reshape():
    store = ConstraintStore()
    a, b, bs = syms("a", "b", "bs")
    # reshape [a, b, 8] -> [bs, 8] proves a*b == bs
    store.assert_products_equal((a, b, 8), (bs, 8))
    assert store.same_num_elements((a, b, 8), (bs, 8))
    assert store.same_num_elements((bs, 8), (a, b, 8))
    # and derived: [a, b, 16] vs [bs, 16]? NOT directly provable (different
    # term), conservatively false
    assert not store.same_num_elements((a, b, 16), (bs, 4))


def test_product_equality_transitive():
    store = ConstraintStore()
    a, b, bs, bs2 = syms("a", "b", "bs", "bs2")
    store.assert_products_equal((a, b), (bs,))
    store.assert_products_equal((bs,), (bs2,))
    assert store.same_num_elements((a, b), (bs2,))


def test_product_equality_folds_dim_equalities():
    store = ConstraintStore()
    a, b = syms("a", "b")
    store.assert_dims_equal(a, b)
    # same canonical term after resolution
    assert store.same_num_elements((a, 4), (b, 4))


def test_likely_value_from_hint():
    store = ConstraintStore()
    hinted = SymDim("h", hint=64)
    store.note_likely_value(hinted)
    assert store.likely_value(SymDim("h")) == 64
    assert store.likely_value(SymDim("unknown")) is None
    assert store.likely_value(32) == 32


def test_summary_counters():
    store = ConstraintStore()
    a, b = syms("a", "b")
    store.assert_dims_equal(a, b)
    store.assert_products_equal((a, 2), (b, 2))
    summary = store.summary()
    assert summary["dim_facts"] == 1
    assert summary["dim_classes"] == 1


# -- range facts (assume_range / range_of / range_facts) ---------------------

def test_assume_range_basic_and_meet():
    store = ConstraintStore()
    store.assume_range("s", 2, 512)
    assert store.range_of("s") == (2, 512)
    store.assume_range("s", 8, None)       # facts meet: lo tightens
    assert store.range_of("s") == (8, 512)
    store.assume_range("s", None, 128)     # hi tightens
    assert store.range_of("s") == (8, 128)
    assert store.summary()["range_facts"] == 3


def test_assume_range_on_constant_validates():
    store = ConstraintStore()
    store.assume_range(8, 1, 16)           # contains the constant: fine
    with pytest.raises(ContradictionError):
        store.assume_range(8, 10, 16)      # excludes it: contradiction


def test_empty_range_is_kept_not_raised():
    """Contradictory assumes are reported by the interval engine (L601),
    one per class, instead of aborting the analysis on the first."""
    store = ConstraintStore()
    store.assume_range("s", 100, None)
    store.assume_range("s", None, 50)
    lo, hi = store.range_of("s")
    assert lo > hi                          # empty, visible to callers


def test_ranges_flow_through_dim_classes():
    store = ConstraintStore()
    a, b = syms("a", "b")
    store.assume_range(a, 4, 64)
    store.assert_dims_equal(a, b)
    assert store.range_of(b) == (4, 64)
    assert ("assume", "a", 4, 64) in store.range_facts(b)


def test_point_range_resolves_like_a_constant():
    store = ConstraintStore()
    (a,) = syms("a")
    store.assume_range(a, 7, 7)
    assert store.resolve_dim(a) == 7
    assert store.likely_value(a) == 7


def test_hints_clamped_into_proven_range():
    """A likely-value hint may pick a value but never widen the facts."""
    store = ConstraintStore()
    hinted = SymDim("h", hint=1000)
    store.note_likely_value(hinted)
    store.assume_range("h", 2, 128)
    assert store.likely_value(SymDim("h")) == 128   # clamped to hi
    store2 = ConstraintStore()
    store2.note_likely_value(SymDim("k", hint=1))
    store2.assume_range("k", 16, 64)
    assert store2.likely_value(SymDim("k")) == 16   # clamped to lo


def test_hint_never_becomes_a_range_fact():
    store = ConstraintStore()
    store.note_likely_value(SymDim("h", hint=64))
    assert store.range_of("h") == (None, None)
    assert store.range_facts("h") == []


def test_class_member_hint_is_shared_and_clamped():
    store = ConstraintStore()
    a, b = syms("a", "b")
    store.note_likely_value(SymDim("a", hint=48))
    store.assert_dims_equal(a, b)
    assert store.likely_value(b) == 48
    store.assume_range(b, 1, 32)
    assert store.likely_value(b) == 32
