"""The constraint store: dim equality, product equality, likely values."""

import pytest

from repro.core.symbolic import ConstraintStore, ContradictionError
from repro.core.symbolic.constraints import product_term
from repro.ir.shapes import SymDim


def syms(*names):
    return tuple(SymDim(n) for n in names)


def test_dim_equality_basics():
    store = ConstraintStore()
    a, b = syms("a", "b")
    assert not store.dims_equal(a, b)
    store.assert_dims_equal(a, b)
    assert store.dims_equal(a, b)
    assert store.dims_equal(b, a)


def test_dim_equality_with_constant():
    store = ConstraintStore()
    (a,) = syms("a")
    store.assert_dims_equal(a, 8)
    assert store.dims_equal(a, 8)
    assert store.resolve_dim(a) == 8
    assert store.likely_value(a) == 8


def test_shapes_equal():
    store = ConstraintStore()
    a, b, c = syms("a", "b", "c")
    store.assert_dims_equal(a, b)
    assert store.shapes_equal((a, 4), (b, 4))
    assert not store.shapes_equal((a, 4), (c, 4))
    assert not store.shapes_equal((a,), (a, 4))


def test_rank_mismatch_assert_raises():
    store = ConstraintStore()
    with pytest.raises(ContradictionError):
        store.assert_shapes_equal((4,), (4, 4))


def test_product_term_canonical():
    a, b = syms("a", "b")
    assert product_term((a, 4, b)) == (4, ("a", "b"))
    assert product_term((b, a, 4)) == product_term((a, b, 4))
    assert product_term((2, 3)) == (6, ())


def test_product_equality_from_reshape():
    store = ConstraintStore()
    a, b, bs = syms("a", "b", "bs")
    # reshape [a, b, 8] -> [bs, 8] proves a*b == bs
    store.assert_products_equal((a, b, 8), (bs, 8))
    assert store.same_num_elements((a, b, 8), (bs, 8))
    assert store.same_num_elements((bs, 8), (a, b, 8))
    # and derived: [a, b, 16] vs [bs, 16]? NOT directly provable (different
    # term), conservatively false
    assert not store.same_num_elements((a, b, 16), (bs, 4))


def test_product_equality_transitive():
    store = ConstraintStore()
    a, b, bs, bs2 = syms("a", "b", "bs", "bs2")
    store.assert_products_equal((a, b), (bs,))
    store.assert_products_equal((bs,), (bs2,))
    assert store.same_num_elements((a, b), (bs2,))


def test_product_equality_folds_dim_equalities():
    store = ConstraintStore()
    a, b = syms("a", "b")
    store.assert_dims_equal(a, b)
    # same canonical term after resolution
    assert store.same_num_elements((a, 4), (b, 4))


def test_likely_value_from_hint():
    store = ConstraintStore()
    hinted = SymDim("h", hint=64)
    store.note_likely_value(hinted)
    assert store.likely_value(SymDim("h")) == 64
    assert store.likely_value(SymDim("unknown")) is None
    assert store.likely_value(32) == 32


def test_summary_counters():
    store = ConstraintStore()
    a, b = syms("a", "b")
    store.assert_dims_equal(a, b)
    store.assert_products_equal((a, 2), (b, 2))
    summary = store.summary()
    assert summary["dim_facts"] == 1
    assert summary["dim_classes"] == 1
