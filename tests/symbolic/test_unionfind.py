"""Union-find over dims with constant resolution."""

import pytest

from repro.core.symbolic import ContradictionError, UnionFind


def test_singletons():
    uf = UnionFind()
    assert not uf.same("a", "b")
    assert uf.same("a", "a")


def test_union_transitive():
    uf = UnionFind()
    uf.union("a", "b")
    uf.union("b", "c")
    assert uf.same("a", "c")
    assert not uf.same("a", "d")


def test_constant_resolution():
    uf = UnionFind()
    uf.union("a", 4)
    assert uf.constant_of("a") == 4
    uf.union("b", "a")
    assert uf.constant_of("b") == 4


def test_equal_constants_always_same():
    uf = UnionFind()
    assert uf.same(4, 4)
    assert not uf.same(4, 5)


def test_contradiction_raises():
    uf = UnionFind()
    uf.union("a", 4)
    uf.union("b", 5)
    with pytest.raises(ContradictionError):
        uf.union("a", "b")


def test_classes():
    uf = UnionFind()
    uf.union("a", "b")
    uf.add("lonely")
    classes = uf.classes()
    assert len(classes) == 1
    assert set(classes[0]) == {"a", "b"}


def test_constant_through_merge_chain():
    uf = UnionFind()
    uf.union("a", "b")
    uf.union("c", "d")
    uf.union("d", 7)
    uf.union("a", "c")
    for key in ("a", "b", "c", "d"):
        assert uf.constant_of(key) == 7
