"""Tuned plans end to end: engine freezing, replay, and serving.

The tentpole claim is that search cost is paid once, in the background,
and replay is free: a tuned ``LaunchPlan`` carries the winners by name,
the fast path replays them with zero extra work, and every output is
bit-identical to the heuristic plan's.
"""

from __future__ import annotations

import pytest

from repro.core.codegen.schedules import schedule_named
from repro.device import A10
from repro.runtime import ExecutionEngine
from repro.serving import (ServingEngine, ServingOptions,
                           SignatureCompileCost, VirtualScheduler)
from repro.tuning import ScheduleTuner, TuningOptions

FAST_COMPILE = SignatureCompileCost(fixed_us=10_000.0, per_kernel_us=100.0)


def tune_and_prepare(exe, inputs, budget_us=250_000.0):
    engine = ExecutionEngine(exe, A10)
    signature = engine.host_program.signature(inputs)
    result = ScheduleTuner(A10, TuningOptions(budget_us=budget_us)).tune(
        exe, signature)
    plan = engine.prepare(inputs, signature, selector=result.selector(),
                          overwrite=True)
    return engine, signature, result, plan


# -- engine-level freezing --------------------------------------------------


def test_prepare_with_selector_freezes_a_tuned_plan(toy_exe, toy_inputs):
    engine, signature, result, plan = tune_and_prepare(toy_exe,
                                                       toy_inputs)
    assert plan.tuned
    assert engine.peek_plan(signature) is plan
    for kernel, pick in result.pick_names().items():
        assert plan.schedules[kernel] == pick


def test_heuristic_plans_are_not_marked_tuned(toy_exe, toy_inputs):
    engine = ExecutionEngine(toy_exe, A10)
    plan = engine.prepare(toy_inputs)
    assert not plan.tuned
    assert plan.schedules, "plans must record schedule picks by name"


def test_overwrite_upgrades_an_installed_plan(toy_exe, toy_inputs):
    """The serving runtime compiles heuristic first and tunes in the
    background; the tuned prepare must replace the installed plan."""
    engine = ExecutionEngine(toy_exe, A10)
    signature = engine.host_program.signature(toy_inputs)
    heuristic = engine.prepare(toy_inputs, signature)
    result = ScheduleTuner(A10).tune(toy_exe, signature)
    tuned = engine.prepare(toy_inputs, signature,
                           selector=result.selector(), overwrite=True)
    assert engine.peek_plan(signature) is tuned
    assert tuned is not heuristic and tuned.tuned


def test_run_stats_surface_the_chosen_schedule_names(toy_exe,
                                                     toy_inputs):
    engine, signature, result, plan = tune_and_prepare(toy_exe,
                                                       toy_inputs)
    _, stats = engine.run(toy_inputs)
    schedules = stats.details["schedules"]
    assert schedules == plan.schedules
    for name in schedules.values():
        schedule_named(name)  # every surfaced name round-trips


def test_tuned_replay_is_bit_identical_and_never_slower(toy_exe,
                                                        toy_inputs):
    reference = ExecutionEngine(toy_exe, A10)
    expected, heuristic_stats = reference.run(toy_inputs)
    engine, _, result, _ = tune_and_prepare(toy_exe, toy_inputs)
    outputs, tuned_stats = engine.run(toy_inputs)
    for ref, got in zip(expected, outputs):
        assert ref.shape == got.shape and ref.dtype == got.dtype
        assert ref.tobytes() == got.tobytes(), \
            "a schedule choice changed numerics"
    assert tuned_stats.device_time_us \
        <= heuristic_stats.device_time_us * (1 + 1e-12)
    assert result.tuned_time_us <= result.heuristic_time_us


def test_replay_pays_no_search_cost(toy_exe, toy_inputs):
    """Warm runs of a tuned plan replay frozen picks — the second run
    charges exactly what the first charged, search nowhere in sight."""
    engine, _, _, _ = tune_and_prepare(toy_exe, toy_inputs)
    _, first = engine.run(toy_inputs)
    _, second = engine.run(toy_inputs)
    assert second.device_time_us == first.device_time_us
    assert second.details["schedules"] == first.details["schedules"]


# -- serving: background search under the virtual clock ---------------------


def make_serving(exe, tuning=None, seed=0):
    scheduler = VirtualScheduler(seed=seed)
    engine = ServingEngine(
        A10, scheduler,
        ServingOptions(compile_cost=FAST_COMPILE, tuning=tuning))
    engine.register_model("mlp", exe)
    return scheduler, engine


def test_background_compile_installs_a_tuned_plan(toy_exe, toy_inputs):
    scheduler, serving = make_serving(
        toy_exe, tuning=TuningOptions(budget_us=250_000.0))
    cold = serving.submit("mlp", toy_inputs)
    scheduler.run_until_idle()
    warm = serving.submit("mlp", toy_inputs)
    scheduler.run_until_idle()
    assert cold.response.ok and cold.response.path == "fallback"
    assert warm.response.ok and warm.response.path == "fast"
    assert serving.counters["tuned_signatures"] == 1
    assert serving.counters["tuned_served"] == 1
    plan = serving.model("mlp").engine.peek_plan(
        cold.request.signature)
    assert plan is not None and plan.tuned


def test_tuning_rides_the_compile_job_duration(toy_exe, toy_inputs):
    """The background job's duration is compile time plus the *bounded*
    search time — min(budget, static estimate) — asserted by probing
    the virtual clock just before and just after the job must land."""
    budget = TuningOptions(budget_us=250_000.0)
    scheduler, serving = make_serving(toy_exe, tuning=budget)
    entry = serving.model("mlp")
    estimate = serving.tuner.estimate_cost_us(toy_exe)
    assert entry.tuning_duration_us == min(budget.budget_us, estimate)
    duration = entry.compile_duration_us + entry.tuning_duration_us

    probes = {}
    signature = entry.engine.host_program.signature(toy_inputs)
    scheduler.call_at(0.0, lambda: serving.submit("mlp", toy_inputs))
    scheduler.call_at(duration - 1.0, lambda: probes.update(
        before=entry.engine.peek_plan(signature)))
    scheduler.call_at(duration + 1.0, lambda: probes.update(
        after=entry.engine.peek_plan(signature)))
    scheduler.run_until_idle()
    assert probes["before"] is None, \
        "plan landed before compile+tuning time elapsed"
    assert probes["after"] is not None and probes["after"].tuned


def test_starved_budget_is_honoured_and_counted(toy_exe, toy_inputs):
    """A starvation budget still yields a plan (heuristic picks), the
    job is sized by the budget rather than the estimate, and the
    exhaustion is counted."""
    starved = TuningOptions(budget_us=100.0)
    scheduler, serving = make_serving(toy_exe, tuning=starved)
    entry = serving.model("mlp")
    assert entry.tuning_duration_us == 100.0
    serving.submit("mlp", toy_inputs)
    scheduler.run_until_idle()
    warm = serving.submit("mlp", toy_inputs)
    scheduler.run_until_idle()
    assert serving.counters["tuning_budget_exhausted"] == 1
    assert serving.tuning_totals["spent_us"] <= 100.0
    assert warm.response.ok and warm.response.path == "fast"


def test_stats_expose_the_tuning_block(toy_exe, toy_inputs):
    scheduler, serving = make_serving(
        toy_exe, tuning=TuningOptions(budget_us=250_000.0))
    serving.submit("mlp", toy_inputs)
    scheduler.run_until_idle()
    serving.submit("mlp", toy_inputs)
    scheduler.run_until_idle()
    block = serving.stats()["tuning"]
    assert block["tuned_signatures"] == 1
    assert block["tuned_served"] == 1
    assert block["faults"] == 0
    assert block["spent_us"] <= block["budget_us"]
    assert block["enumerated"] >= block["scored"] + block["pruned"]
    assert block["kernels"] >= 1


def test_tuning_disabled_leaves_serving_untouched(toy_exe, toy_inputs):
    scheduler, serving = make_serving(toy_exe, tuning=None)
    assert serving.tuner is None
    serving.submit("mlp", toy_inputs)
    scheduler.run_until_idle()
    warm = serving.submit("mlp", toy_inputs)
    scheduler.run_until_idle()
    assert warm.response.ok and warm.response.path == "fast"
    assert serving.counters["tuned_signatures"] == 0
    assert "tuning" not in serving.stats()
    plan = serving.model("mlp").engine.peek_plan(
        warm.request.signature)
    assert plan is not None and not plan.tuned


def test_sync_compile_path_stays_heuristic(toy_exe, toy_inputs):
    """Foreground (sync) compiles must not pay search cost — tuning is
    a background-pool concern only."""
    scheduler = VirtualScheduler(seed=0)
    serving = ServingEngine(
        A10, scheduler,
        ServingOptions(compile_cost=FAST_COMPILE,
                       background_compile=False,
                       tuning=TuningOptions(budget_us=250_000.0)))
    serving.register_model("mlp", toy_exe)
    ticket = serving.submit("mlp", toy_inputs)
    scheduler.run_until_idle()
    assert ticket.response.ok
    assert ticket.response.path == "sync_compile"
    plan = serving.model("mlp").engine.peek_plan(
        ticket.request.signature)
    assert plan is not None and not plan.tuned


def test_two_signatures_tune_independently(toy_exe):
    import numpy as np

    from ..conftest import toy_mlp_inputs

    rng = np.random.default_rng(1)
    small = toy_mlp_inputs(rng, batch=2, seq=4)
    large = toy_mlp_inputs(rng, batch=16, seq=32)
    scheduler, serving = make_serving(
        toy_exe, tuning=TuningOptions(budget_us=250_000.0))
    serving.submit("mlp", small)
    serving.submit("mlp", large)
    scheduler.run_until_idle()
    assert serving.counters["tuned_signatures"] == 2
    engine = serving.model("mlp").engine
    for inputs in (small, large):
        signature = engine.host_program.signature(inputs)
        plan = engine.peek_plan(signature)
        assert plan is not None and plan.tuned
