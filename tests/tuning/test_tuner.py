"""The budgeted search itself: winners, accounting, determinism.

The contracts under test are the ones the serving runtime relies on:
spent time never exceeds the budget, the winner is never slower than
the dispatch-stub heuristic, the same (signature, budget) always tunes
identically, and the static cost estimate upper-bounds actual spend.
"""

from __future__ import annotations

import pytest

from repro.core.codegen.schedules import (HEURISTIC_SELECTOR,
                                          schedule_named)
from repro.device import A10, TUNING_COSTS, tuning_cost_us
from repro.obs import CapturingTracer
from repro.tuning import (ScheduleTuner, TunedSelector, TuningOptions,
                          WorstCaseSelector, representative_signature)


def toy_signature(batch=4, seq=8):
    return (("x", (batch, seq, 32)), ("w", (32, 16)), ("c", (16,)),
            ("g", (16,)), ("beta", (16,)))


# -- winners ----------------------------------------------------------------


def test_tuned_never_slower_than_heuristic_per_kernel(toy_exe):
    result = ScheduleTuner(A10).tune(toy_exe, toy_signature())
    assert result.kernels, "toy model must expose schedulable kernels"
    for record in result.kernels:
        assert record.winner_time_us <= record.heuristic_time_us, \
            f"{record.name}: tuned {record.winner} slower than " \
            f"heuristic {record.heuristic}"
    assert result.tuned_time_us <= result.heuristic_time_us


def test_search_improves_the_toy_model(toy_exe):
    result = ScheduleTuner(A10).tune(toy_exe, toy_signature())
    assert any(record.improved for record in result.kernels), \
        "the search found nothing on a reduction-heavy model"
    assert result.summary()["speedup"] > 1.0


def test_every_pick_round_trips_by_name(toy_exe):
    result = ScheduleTuner(A10).tune(toy_exe, toy_signature())
    for name in result.pick_names().values():
        assert schedule_named(name).name == name


def test_heuristic_pick_always_in_scored_set(toy_exe):
    """The dispatch-stub schedule is always scored, so a tuned plan can
    degrade to exactly the heuristic choice but never below it."""
    result = ScheduleTuner(A10).tune(toy_exe, toy_signature())
    for record in result.kernels:
        assert record.heuristic_time_us > 0.0
        assert record.scored >= 1


# -- budget accounting ------------------------------------------------------


def test_spent_never_exceeds_budget(toy_exe):
    generous = ScheduleTuner(A10).tune(toy_exe, toy_signature())
    assert not generous.budget_exhausted
    assert generous.spent_us <= generous.budget_us
    for budget in (0.0, 500.0, 3_000.0, generous.spent_us - 1.0):
        options = TuningOptions(budget_us=budget)
        result = ScheduleTuner(A10, options).tune(toy_exe,
                                                  toy_signature())
        assert result.spent_us <= budget, \
            f"budget {budget}: spent {result.spent_us}"
        assert result.budget_exhausted


def test_exhausted_kernels_keep_heuristic_picks(toy_exe):
    result = ScheduleTuner(A10, TuningOptions(budget_us=0.0)).tune(
        toy_exe, toy_signature())
    assert result.picks == {}
    assert all(record.skipped for record in result.kernels)
    for record in result.kernels:
        assert record.winner == record.heuristic
        assert record.winner_time_us == record.heuristic_time_us


def test_partial_budget_tunes_a_prefix(toy_exe):
    """A budget covering some kernels tunes those and leaves the rest
    heuristic — and the picks it does make match the unbounded run's."""
    full = ScheduleTuner(A10).tune(toy_exe, toy_signature())
    per_kernel = [k.cost_us for k in full.kernels if not k.skipped]
    assert len(per_kernel) >= 2
    budget = per_kernel[0] + 1.0
    partial = ScheduleTuner(A10, TuningOptions(budget_us=budget)).tune(
        toy_exe, toy_signature())
    assert partial.budget_exhausted
    assert 0 < len(partial.picks) < len(full.picks)
    for name, pick in partial.pick_names().items():
        assert full.pick_names()[name] == pick


def test_estimate_upper_bounds_actual_spend(toy_exe):
    tuner = ScheduleTuner(A10)
    estimate = tuner.estimate_cost_us(toy_exe)
    result = tuner.tune(toy_exe, toy_signature())
    assert result.spent_us <= estimate
    kernels = len(result.kernels)
    assert estimate == tuning_cost_us(
        kernels=kernels, enumerated=result.enumerated,
        scored=result.enumerated)


def test_cost_table_drives_the_charges(toy_exe):
    result = ScheduleTuner(A10).tune(toy_exe, toy_signature())
    expected = tuning_cost_us(kernels=len(result.kernels),
                              enumerated=result.enumerated,
                              scored=result.scored)
    assert result.spent_us == pytest.approx(expected)
    assert TUNING_COSTS["per_candidate_scored_us"] > \
        TUNING_COSTS["per_candidate_enumerated_us"], \
        "scoring must cost more than walking or pruning buys nothing"


# -- determinism ------------------------------------------------------------


def test_same_signature_same_budget_same_plan(toy_exe):
    options = TuningOptions(budget_us=50_000.0)
    first = ScheduleTuner(A10, options).tune(toy_exe, toy_signature())
    second = ScheduleTuner(A10, options).tune(toy_exe, toy_signature())
    assert first.pick_names() == second.pick_names()
    assert first.spent_us == second.spent_us
    assert first.budget_exhausted == second.budget_exhausted


def test_different_shapes_tune_differently():
    """The toy model's reduction has fixed tiny cols, so it tunes the
    same everywhere; a softmax over symbolic (rows, cols) must not —
    a shape-blind tuner defeats the point of per-signature search."""
    from repro.core import compile_graph
    from repro.ir import dtypes as dt
    from repro.ir.builder import GraphBuilder

    b = GraphBuilder("softmax_rows")
    x = b.parameter("x", (b.sym("r", hint=64), b.sym("c", hint=1024)),
                    dt.f32)
    b.outputs(b.softmax(x, axis=-1))
    exe = compile_graph(b.graph)
    tuner = ScheduleTuner(A10)
    wide = tuner.tune(exe, (("x", (4, 4096)),))
    tall = tuner.tune(exe, (("x", (8192, 64)),))
    assert wide.pick_names() != tall.pick_names()
    assert all(schedule.tuned for schedule in wide.picks.values())


# -- signature classes ------------------------------------------------------


def test_representative_signature_prefers_contained_hints(toy_exe):
    signature = dict(representative_signature(toy_exe))
    # toy_mlp declares batch hint=8, seq hint=16; static dims pass through.
    assert signature["x"] == (8, 16, 32)
    assert signature["w"] == (32, 16)


def test_tune_class_equals_tune_at_representative_dims(toy_exe):
    tuner = ScheduleTuner(A10)
    by_class = tuner.tune_class(toy_exe)
    direct = tuner.tune(toy_exe, representative_signature(toy_exe))
    assert by_class.pick_names() == direct.pick_names()
    assert by_class.signature == direct.signature


def test_assume_ranges_steer_the_representative_dims(toy_exe):
    wide = representative_signature(
        toy_exe, assume_ranges={"batch": (256, 256), "seq": (64, 64)})
    assert dict(wide)["x"] == (256, 64, 32)


# -- selectors --------------------------------------------------------------


def test_tuned_selector_falls_back_outside_its_picks(toy_exe):
    result = ScheduleTuner(A10).tune(toy_exe, toy_signature())
    selector = result.selector()
    assert isinstance(selector, TunedSelector)
    # A kernel name the search never saw: both domains defer to the
    # dispatch stubs.
    ghost = type("Ghost", (), {"name": "no_such_kernel"})()
    assert selector.elementwise(ghost, 1024, 64).name \
        == HEURISTIC_SELECTOR.elementwise(ghost, 1024, 64).name
    assert selector.reduction(ghost, 64, 1024).name \
        == HEURISTIC_SELECTOR.reduction(ghost, 64, 1024).name


def test_tuned_selector_ignores_family_mismatched_picks():
    """A row-space winner must not leak into a flat-loop dispatch."""
    pick = schedule_named("row_tile_t64v1")
    selector = TunedSelector({"k": pick})
    kernel = type("K", (), {"name": "k"})()
    assert not selector.elementwise(kernel, 1024, 64).tuned
    assert selector.reduction(kernel, 64, 1024) is pick


def test_worst_case_selector_is_never_better_than_heuristic():
    worst = WorstCaseSelector(A10)
    kernel = type("K", (), {"name": "k"})()
    for rows, cols in ((8, 8192), (4096, 64), (64, 1024)):
        w = worst.reduction(kernel, rows, cols)
        h = HEURISTIC_SELECTOR.reduction(kernel, rows, cols)
        weff, wpar = w.reduction_profile(rows, cols)
        heff, hpar = h.reduction_profile(rows, cols)
        assert weff <= heff or wpar <= hpar


# -- observability ----------------------------------------------------------


def test_search_emits_tuning_spans(toy_exe):
    tracer = CapturingTracer()
    ScheduleTuner(A10, tracer=tracer).tune(toy_exe, toy_signature())
    search = tracer.spans.one("tuning:search")
    kernels = tracer.spans.within(search).named("tuning:kernel")
    assert len(kernels.names()) == search.attrs["kernels"]
    assert search.attrs["spent_us"] <= search.attrs["budget_us"]
    assert not search.attrs["budget_exhausted"]
    for span in kernels:
        assert span.attrs["enumerated"] >= span.attrs["scored"]
        assert span.attrs["winner_time_us"] \
            <= span.attrs["heuristic_time_us"]


def test_budget_exhaustion_emits_event(toy_exe):
    tracer = CapturingTracer()
    ScheduleTuner(A10, TuningOptions(budget_us=100.0),
                  tracer=tracer).tune(toy_exe, toy_signature())
    events = tracer.spans.events().named("tuning:budget_exhausted")
    assert len(events.names()) == 1, \
        "exhaustion must be reported once, not once per skipped kernel"
    event = events.first()
    assert event.attrs["spent_us"] <= event.attrs["budget_us"]
