"""The strategy space: grid enumeration and hardware-aware pruning.

Every pruning rule gets a shape (or a device limit) constructed to
trigger exactly it, and the structural guarantees the tuner leans on —
generics always survive, enumeration counts are shape-independent,
walks are deterministic — are pinned here.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.core.codegen.schedules import (ELEMENTWISE_SCHEDULES,
                                          REDUCTION_SCHEDULES)
from repro.device import A10
from repro.tuning import PRUNE_RULES, StrategySpace


def names(result):
    return [s.name for s in result.candidates]


def generic_reduction_names():
    return {s.name for s in REDUCTION_SCHEDULES}


# -- enumeration bookkeeping -----------------------------------------------


def test_grid_sizes_are_shape_independent():
    space = StrategySpace(A10)
    assert space.elementwise_grid_size == len(ELEMENTWISE_SCHEDULES) \
        + len(space.ew_widths)
    assert space.reduction_grid_size == len(REDUCTION_SCHEDULES) \
        + len(space.thread_counts) * len(space.row_widths) \
        * len(space.col_splits)
    for rows, cols in ((4, 64), (4096, 4096), (1, 1)):
        result = space.reduction_candidates(rows, cols)
        assert result.enumerated == space.reduction_grid_size
        assert len(result.candidates) + result.pruned_total \
            == result.enumerated


def test_unsupported_widths_are_not_grid_points():
    """A width codegen cannot emit is dropped at construction, not
    enumerated-then-pruned — it must not charge the budget."""
    space = StrategySpace(A10, vector_widths=(1, 2, 3, 4, 7, 8, 16))
    assert 3 not in space.ew_widths and 16 not in space.ew_widths
    assert space.row_widths == (1, 2, 4)  # no row tile family at 8
    assert 8 in space.ew_widths


def test_walks_are_deterministic():
    space = StrategySpace(A10)
    first = space.reduction_candidates(64, 1024)
    second = space.reduction_candidates(64, 1024)
    assert names(first) == names(second)
    assert first.pruned == second.pruned


# -- the generic-variant guarantee -----------------------------------------


def test_generic_reduction_variants_always_survive():
    space = StrategySpace(A10)
    for rows, cols in ((1, 1), (2, 3), (4096, 8192), (7, 997)):
        survivors = set(names(space.reduction_candidates(rows, cols)))
        assert generic_reduction_names() <= survivors


def test_empty_tuned_grid_degrades_to_generics():
    """With the whole tuned grid pruned away (prime cols kill every
    width>1, tiny extents kill the rest via overshoot/occupancy), the
    candidate set is exactly the generic dispatch set."""
    space = StrategySpace(A10, thread_counts=(1024,),
                          vector_widths=(2, 4), col_splits=(1,))
    result = space.reduction_candidates(1, 7)
    assert set(names(result)) == generic_reduction_names()


def test_flat_pruned_only_when_vectorized4_legal():
    """Generic elementwise variants survive except the one documented
    carve-out: vectorized4 on a misaligned innermost is dropped under
    ``misaligned`` (the dispatch stub never picks it either)."""
    space = StrategySpace(A10)
    aligned = space.elementwise_candidates(1024, 64)
    misaligned = space.elementwise_candidates(1023, 31)
    assert "vectorized4" in names(aligned)
    assert "vectorized4" not in names(misaligned)
    assert misaligned.pruned["misaligned"] >= 1
    assert "flat" in names(misaligned)


# -- one shape per pruning rule --------------------------------------------


def test_prune_threads_against_device_limit():
    space = StrategySpace(A10, thread_counts=(2048,), vector_widths=(1,),
                          col_splits=(1,))
    result = space.reduction_candidates(64, 8192)
    assert result.pruned["threads"] == 1
    assert set(names(result)) == generic_reduction_names()


def test_prune_vector_bytes_against_device_limit():
    narrow = dataclasses.replace(A10, max_vector_bytes=8)
    space = StrategySpace(narrow, thread_counts=(256,),
                          vector_widths=(4,), col_splits=(1,))
    result = space.reduction_candidates(64, 8192)
    assert result.pruned["vector_bytes"] == 1
    ew = space.elementwise_candidates(1024, 64)
    assert "ew_vec4" not in names(ew)
    assert ew.pruned["vector_bytes"] >= 1


def test_prune_smem_staging_overflow():
    tiny_smem = dataclasses.replace(A10, smem_bytes_per_block=4096)
    space = StrategySpace(tiny_smem, thread_counts=(1024,),
                          vector_widths=(1, 2), col_splits=(1,))
    result = space.reduction_candidates(64, 8192)
    # 2*4*1024*1 = 8192 > 4096 and 2*4*1024*2 = 16384 > 4096.
    assert result.pruned["smem"] == 2


def test_prune_misaligned_row_width():
    space = StrategySpace(A10, thread_counts=(32,), vector_widths=(2, 4),
                          col_splits=(1,))
    result = space.reduction_candidates(4096, 126)  # 126 % 4 != 0
    assert result.pruned["misaligned"] == 1  # width 4 only
    assert any(name.startswith("row_tile_t32v2") for name in names(result))


def test_prune_split_excess():
    space = StrategySpace(A10, thread_counts=(32,), vector_widths=(1,),
                          col_splits=(1, 32))
    result = space.reduction_candidates(2048, 16)
    assert result.pruned["split_excess"] == 1  # split 32 > 16 cols


def test_prune_split_unneeded_at_saturation():
    space = StrategySpace(A10, thread_counts=(256,), vector_widths=(1,),
                          col_splits=(1, 2))
    rows = A10.saturation_elements // 256 + 1
    result = space.reduction_candidates(rows, 8192)
    assert result.pruned["split_unneeded"] == 1


def test_prune_overshoot_on_short_rows():
    space = StrategySpace(A10, thread_counts=(1024,), vector_widths=(1,),
                          col_splits=(1,))
    result = space.reduction_candidates(1 << 20, 8)
    # 1024 lanes over an 8-column row is >4x overshoot.
    assert result.pruned["overshoot"] == 1


def test_prune_occupancy_floor():
    space = StrategySpace(A10, thread_counts=(32,), vector_widths=(1,),
                          col_splits=(1,))
    result = space.reduction_candidates(4, 8192)
    # 4 rows * 32 lanes = 128 exposed, problem supports 32768: pruned.
    assert result.pruned["occupancy"] == 1


def test_prune_dominated_keeps_pareto_front():
    space = StrategySpace(A10)
    result = space.reduction_candidates(64, 8192)
    assert result.pruned["dominated"] > 0
    # No surviving tuned candidate may dominate another survivor.
    tuned = [s for s in result.candidates if s.tuned]
    profiles = [(s, *s.reduction_profile(64, 8192)) for s in tuned]
    for sched, eff, par in profiles:
        for other, oeff, opar in profiles:
            if other is sched:
                continue
            assert not (oeff >= eff and opar >= par
                        and other.extra_launches <= sched.extra_launches
                        and (oeff, opar, other.extra_launches)
                        != (eff, par, sched.extra_launches)), \
                f"{sched.name} survived but {other.name} dominates it"


def test_identical_tuned_profiles_do_not_annihilate():
    """Two tuned grid points with byte-identical profiles must not prune
    each other (the dominance check requires a strict difference)."""
    space = StrategySpace(A10, thread_counts=(64,), vector_widths=(1,),
                          col_splits=(1,))
    result = space.reduction_candidates(4096, 64)
    assert any(s.name == "row_tile_t64v1" for s in result.candidates)


def test_prune_counts_cover_declared_rules_only():
    space = StrategySpace(A10)
    result = space.reduction_candidates(512, 2048)
    assert set(result.pruned) == set(PRUNE_RULES)


@pytest.mark.parametrize("rows,cols", [(1, 1), (3, 5), (64, 1024),
                                       (4096, 64), (17, 4096)])
def test_survivor_order_is_generics_first(rows, cols):
    result = StrategySpace(A10).reduction_candidates(rows, cols)
    seen_tuned = False
    for sched in result.candidates:
        if sched.tuned:
            seen_tuned = True
        else:
            assert not seen_tuned, "generic variant after a tuned one"
