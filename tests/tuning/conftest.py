"""Shared fixtures for the schedule-autotuning suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import compile_graph
from repro.device import A10

from ..conftest import toy_mlp_graph, toy_mlp_inputs


@pytest.fixture(scope="session")
def toy_exe():
    return compile_graph(toy_mlp_graph().graph)


@pytest.fixture
def toy_inputs():
    return toy_mlp_inputs(np.random.default_rng(0), batch=4, seq=8)


@pytest.fixture
def device():
    return A10
