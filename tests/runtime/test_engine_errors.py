"""Engine error handling and contract edges."""

import numpy as np
import pytest

from repro.core import compile_graph
from repro.device import A10
from repro.numerics import BindingError
from repro.runtime import EngineOptions, ExecutionEngine

from ..conftest import toy_mlp_graph, toy_mlp_inputs


@pytest.fixture(scope="module")
def engine():
    return ExecutionEngine(compile_graph(toy_mlp_graph().graph), A10)


def test_missing_input_rejected(engine, rng):
    inputs = toy_mlp_inputs(rng, 2, 3)
    del inputs["w"]
    with pytest.raises(BindingError, match="missing input"):
        engine.run(inputs)


def test_wrong_rank_rejected(engine, rng):
    inputs = toy_mlp_inputs(rng, 2, 3)
    inputs["x"] = inputs["x"][0]  # rank 2 instead of 3
    with pytest.raises(BindingError):
        engine.run(inputs)


def test_wrong_static_dim_rejected(engine, rng):
    inputs = toy_mlp_inputs(rng, 2, 3)
    inputs["w"] = np.zeros((32, 17), dtype=np.float32)
    with pytest.raises(BindingError):
        engine.run(inputs)


def test_extra_inputs_ignored(engine, rng):
    inputs = toy_mlp_inputs(rng, 2, 3)
    inputs["unrelated"] = np.zeros(3)
    (out,), __ = engine.run(inputs)
    assert out.shape == (2, 3, 16)


def test_zero_extent_dynamic_dim(engine, rng):
    """batch=0 is a legal binding: empty outputs, no crash."""
    inputs = toy_mlp_inputs(rng, 0, 3)
    (out,), stats = engine.run(inputs)
    assert out.shape == (0, 3, 16)
    assert stats.device_time_us > 0  # launches still happen


def test_unknown_fixed_schedule_rejected(rng):
    exe = compile_graph(toy_mlp_graph().graph)
    engine = ExecutionEngine(exe, A10,
                             EngineOptions(fixed_schedule="warp9"))
    with pytest.raises(KeyError):
        engine.run(toy_mlp_inputs(rng, 2, 3))


def test_float64_inputs_are_cast_or_rejected(engine, rng):
    """The contract: parameters carry the IR dtype; callers must match.

    Passing float64 where f32 is declared is accepted by numpy matmul
    but would silently change semantics — the engine executes with the
    caller's array, so results still cross-check against the interpreter
    which enforces the dtype.  We simply document the current behaviour:
    shapes are validated, dtypes are the caller's responsibility.
    """
    inputs = toy_mlp_inputs(rng, 2, 3)
    (expected,), __ = engine.run(inputs)
    assert expected.dtype == np.float32
