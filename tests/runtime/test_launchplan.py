"""Launch plans: freezing, replay stats, and the bounded LRU cache."""

import numpy as np
import pytest

from repro.core import compile_graph
from repro.device import A10
from repro.device.counters import RunStats
from repro.runtime import (EngineOptions, ExecutionEngine, LaunchPlan,
                           LaunchPlanCache, format_signature)

from ..conftest import toy_mlp_graph, toy_mlp_inputs


@pytest.fixture(scope="module")
def exe():
    return compile_graph(toy_mlp_graph().graph)


# -- the plan itself ---------------------------------------------------------

def test_format_signature():
    sig = (("x", (2, 3)), ("w", (4,)))
    assert format_signature(sig) == "x[2x3], w[4]"


def test_freeze_and_make_stats_round_trip():
    stats = RunStats(device_time_us=12.5, host_time_us=3.25,
                     kernels_launched=7, bytes_read=100, bytes_written=40,
                     flops=9e6)
    stats.details["memory"] = {"peak_bytes": 4096}
    plan = LaunchPlan.freeze((("x", (2, 3)),), {"b": 2}, stats)
    replay = plan.make_stats()
    assert replay == stats
    assert replay.cache_hit and replay.compile_time_us == 0
    # each replay gets its own details dict; mutating one leaks nowhere
    replay.details["memory"]["peak_bytes"] = 0
    assert plan.make_stats().details["memory"]["peak_bytes"] == 4096


def test_freeze_copies_the_memory_dict():
    stats = RunStats()
    stats.details["memory"] = {"peak_bytes": 1}
    plan = LaunchPlan.freeze((), {}, stats)
    stats.details["memory"]["peak_bytes"] = 2
    assert plan.memory == {"peak_bytes": 1}


# -- the cache ---------------------------------------------------------------

def plan_for(key):
    return LaunchPlan.freeze(key, {}, RunStats())


def test_hit_miss_accounting():
    cache = LaunchPlanCache()
    assert cache.get("a") is None
    cache.put("a", plan_for("a"))
    assert cache.get("a") is not None
    assert (cache.hits, cache.misses) == (1, 1)
    assert cache.stats()["hit_rate"] == 0.5


def test_eviction_is_lru_not_fifo():
    cache = LaunchPlanCache(capacity=2)
    cache.put("a", plan_for("a"))
    cache.put("b", plan_for("b"))
    cache.get("a")                 # refresh "a": now "b" is the LRU
    cache.put("c", plan_for("c"))  # evicts "b", not insertion-order "a"
    assert "a" in cache and "c" in cache
    assert "b" not in cache
    assert cache.evictions == 1


def test_peek_touches_neither_stats_nor_recency():
    cache = LaunchPlanCache(capacity=2)
    cache.put("a", plan_for("a"))
    cache.put("b", plan_for("b"))
    assert cache.peek("a") is not None
    assert (cache.hits, cache.misses) == (0, 0)
    cache.put("c", plan_for("c"))  # "a" was only peeked: still the LRU
    assert "a" not in cache


def test_unbounded_cache_never_evicts():
    cache = LaunchPlanCache(capacity=None)
    for key in range(100):
        cache.put(key, plan_for(key))
    assert len(cache) == 100 and cache.evictions == 0


def test_note_seen_and_hot_signatures():
    cache = LaunchPlanCache()
    hot = (("x", (2, 3)),)
    cold = (("x", (9, 9)),)
    assert cache.note(hot) == 1
    assert cache.note(hot) == 2
    cache.note(cold)
    assert cache.seen(hot) == 2 and cache.seen(cold) == 1
    assert cache.signatures_seen == 2
    assert cache.hot_signatures(1) == [("x[2x3]", 2)]
    assert cache.stats()["signatures_seen"] == 2


# -- engine integration ------------------------------------------------------

def test_first_call_records_then_replays(exe, rng):
    engine = ExecutionEngine(exe, A10)
    inputs = toy_mlp_inputs(rng, 3, 5)
    (cold_out,), cold = engine.run(inputs)
    assert engine.plans.stats()["misses"] == 1
    (warm_out,), warm = engine.run(inputs)
    assert engine.plans.stats()["hits"] == 1
    assert np.array_equal(cold_out, warm_out)
    assert warm == cold
    sig = exe.host_program.signature(inputs)
    assert engine.peek_plan(sig) is not None
    assert engine.peek_plan(sig).kernels_launched == cold.kernels_launched


def test_distinct_signatures_get_distinct_plans(exe, rng):
    engine = ExecutionEngine(exe, A10)
    engine.run(toy_mlp_inputs(rng, 2, 5))
    engine.run(toy_mlp_inputs(rng, 3, 7))
    stats = engine.plans.stats()
    assert stats["entries"] == 2
    assert stats["misses"] == 2 and stats["hits"] == 0
    assert stats["signatures_seen"] == 2


def test_capacity_evicts_and_rerecords_identically(exe, rng):
    engine = ExecutionEngine(exe, A10, EngineOptions(plan_capacity=1))
    a = toy_mlp_inputs(rng, 2, 5)
    b = toy_mlp_inputs(rng, 3, 7)
    __, first = engine.run(a)
    engine.run(b)                  # evicts a's plan
    __, again = engine.run(a)      # re-records from scratch
    assert engine.plans.stats()["evictions"] == 2
    assert engine.plans.stats()["misses"] == 3
    assert again == first


# -- background preparation (serving's compile entry point) ------------------

def test_prepare_freezes_the_same_plan_a_first_call_would(exe, rng):
    inputs = toy_mlp_inputs(rng, 3, 5)
    sig = exe.host_program.signature(inputs)

    prepared_engine = ExecutionEngine(exe, A10)
    prepared = prepared_engine.prepare(inputs)

    recorded_engine = ExecutionEngine(exe, A10)
    _, recorded_stats = recorded_engine.run(inputs)
    recorded = recorded_engine.peek_plan(sig)

    assert prepared.signature == recorded.signature == sig
    assert prepared.dims == recorded.dims
    for field in ("device_time_us", "host_time_us", "kernels_launched",
                  "bytes_read", "bytes_written", "flops", "memory"):
        assert getattr(prepared, field) == getattr(recorded, field), field
    assert prepared.make_stats() == recorded_stats


def test_run_after_prepare_is_a_warm_replay(exe, rng):
    inputs = toy_mlp_inputs(rng, 3, 5)
    engine = ExecutionEngine(exe, A10)
    engine.prepare(inputs)
    outputs, stats = engine.run(inputs)
    assert engine.plans.stats()["hits"] == 1
    assert engine.plans.stats()["misses"] == 0
    direct_outputs, direct_stats = ExecutionEngine(exe, A10).run(inputs)
    assert stats == direct_stats
    for a, b in zip(outputs, direct_outputs):
        assert a.tobytes() == b.tobytes()


def test_prepare_is_idempotent(exe, rng):
    inputs = toy_mlp_inputs(rng, 3, 5)
    engine = ExecutionEngine(exe, A10)
    first = engine.prepare(inputs)
    second = engine.prepare(inputs)
    assert second is first
    assert engine.plans.stats()["entries"] == 1
