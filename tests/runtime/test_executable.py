"""Executable metadata and inspection."""

import pytest

from repro.core import CompileOptions, ConstraintLevel, compile_graph
from repro.core.fusion.kinds import FusionKind

from ..conftest import toy_mlp_graph


def test_compile_report_populated():
    b = toy_mlp_graph()
    exe = compile_graph(b.graph)
    report = exe.report
    assert report.num_nodes == len(exe.graph)
    assert report.num_kernels > 0
    assert report.simulated_compile_us > 0
    assert report.wall_time_s > 0
    assert report.fusion_stats["kernels"] >= 1
    assert [r.name for r in report.pass_results][0] == "lower-composites"


def test_original_graph_not_mutated():
    b = toy_mlp_graph()
    before = [n.op for n in b.graph]
    compile_graph(b.graph)
    assert [n.op for n in b.graph] == before
    assert "softmax" in before  # composites still present


def test_kernel_sources_and_lookup():
    b = toy_mlp_graph()
    exe = compile_graph(b.graph)
    sources = exe.kernel_sources()
    assert len(sources) == len(exe.kernels)
    name = exe.kernels[0].name
    assert exe.find_kernel(name) is exe.kernels[0]
    with pytest.raises(KeyError):
        exe.find_kernel("missing")


def test_constants_collected():
    b = toy_mlp_graph()
    exe = compile_graph(b.graph)
    # lowering introduces scalar constants (eps, 0.5, ...)
    assert len(exe.constants) >= 1
    assert exe.constant_bytes() > 0


def test_verify_each_pass_option():
    b = toy_mlp_graph()
    exe = compile_graph(b.graph, CompileOptions(verify_each_pass=True))
    assert exe.report.num_kernels > 0


def test_constraint_level_recorded():
    b = toy_mlp_graph()
    exe = compile_graph(b.graph, CompileOptions(
        constraint_level=ConstraintLevel.EQUALITY))
    assert exe.report.analysis_summary["level"] == "equality"


def test_kernel_kinds_cover_plan():
    b = toy_mlp_graph()
    exe = compile_graph(b.graph)
    kinds = {k.kind for k in exe.kernels}
    assert FusionKind.LIBRARY in kinds
    assert FusionKind.STITCH in kinds
