"""Host-program engine vs. the legacy interpreter: bit-identical.

The slot-addressed host program and the launch-plan cache are pure
host-side optimisations: numeric outputs and simulated ``RunStats`` must
match :class:`LegacyExecutionEngine` bit for bit — on the first call of a
signature (the recording path) *and* on every warm replay — across the
model zoo, the regression corpus, random fuzz graphs, and every engine
ablation.
"""

from pathlib import Path

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings

from repro.core import compile_graph
from repro.device import A10, T4
from repro.fuzz import load_case, make_inputs
from repro.fuzz.corpus import iter_corpus
from repro.fuzz.sampler import binding_suite
from repro.models import MODEL_BUILDERS
from repro.runtime import (EngineOptions, ExecutionEngine,
                           LegacyExecutionEngine)

from ..conftest import softmax_graph, toy_mlp_graph, toy_mlp_inputs
from ..models.test_zoo import small
from ..strategies import fuzz_graphs

CORPUS = iter_corpus(Path(__file__).parent.parent
                     / "regressions" / "corpus")


def identical(a: np.ndarray, b: np.ndarray) -> bool:
    if a.shape != b.shape or a.dtype != b.dtype:
        return False
    if a.dtype.kind in "fc":
        return np.array_equal(a, b, equal_nan=True)
    return np.array_equal(a, b)


def assert_equivalent(exe, device, inputs_list, options=None):
    """Legacy and hosted engines agree exactly, cold and warm."""
    legacy = LegacyExecutionEngine(exe, device, options)
    hosted = ExecutionEngine(exe, device, options)
    for inputs in inputs_list:
        expected_outs, expected = legacy.run(inputs)
        for attempt in ("record", "replay"):
            actual_outs, actual = hosted.run(inputs)
            context = f"{exe.graph.name} [{attempt}]"
            assert len(actual_outs) == len(expected_outs), context
            for exp, act in zip(expected_outs, actual_outs):
                assert identical(exp, act), context
            assert actual == expected, context


def test_toy_mlp_across_shapes_and_devices(rng):
    exe = compile_graph(toy_mlp_graph().graph)
    shapes = [(1, 1), (2, 5), (2, 5), (7, 3), (16, 64)]
    inputs = [toy_mlp_inputs(rng, b, s) for b, s in shapes]
    for device in (A10, T4):
        assert_equivalent(exe, device, inputs)


@pytest.mark.parametrize("options", [
    EngineOptions(fixed_schedule="two_pass"),
    EngineOptions(fixed_schedule="row_per_block"),
    EngineOptions(host_placement_enabled=False),
    EngineOptions(base_efficiency=0.5, dispatch_us_per_kernel=7.0),
], ids=["two_pass", "row_per_block", "no_host_placement", "retuned"])
def test_ablations_stay_equivalent(options, rng):
    exe = compile_graph(softmax_graph().graph)
    inputs = [{"x": rng.normal(size=(rows, cols)).astype(np.float32)}
              for rows, cols in [(4, 8), (64, 128), (4, 8), (2048, 16)]]
    assert_equivalent(exe, A10, inputs)


@pytest.mark.parametrize("name", sorted(MODEL_BUILDERS))
def test_zoo_model_engines_agree(name, rng):
    model = small(name)
    exe = compile_graph(model.graph)
    inputs = []
    for point in ("low", "high"):
        values = {axis: lo if point == "low" else min(hi, lo * 2 + 4)
                  for axis, (lo, hi) in model.axes.items()}
        inputs.append(model.make_inputs(rng, **values))
    inputs.append(inputs[0])  # warm replay of the first signature
    assert_equivalent(exe, A10, inputs)


@pytest.mark.parametrize("path", CORPUS, ids=lambda p: p.stem)
def test_corpus_case_engines_agree(path):
    graph, bindings, meta = load_case(path)
    exe = compile_graph(graph)
    seed = int(meta.get("input_seed", 0))
    assert_equivalent(exe, A10, [make_inputs(graph, bindings, seed)])


@settings(max_examples=20, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(graph=fuzz_graphs(max_nodes=10))
def test_fuzz_graph_engines_agree(graph):
    exe = compile_graph(graph)
    inputs = [make_inputs(graph, bindings, seed=3)
              for bindings in binding_suite(graph, limit=3)]
    assert_equivalent(exe, A10, inputs)
