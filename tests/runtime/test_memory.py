"""Buffer planning: liveness, slot assignment, reuse accounting."""

import numpy as np
import pytest

from repro.core import compile_graph
from repro.device import A10
from repro.runtime import ExecutionEngine, plan_buffers
from repro.runtime.memory import BufferPlan, Interval
from repro.ir import GraphBuilder, f32

from ..conftest import toy_mlp_graph, toy_mlp_inputs


def interval(node_id, start, end, size=4):
    return Interval(node_id=node_id, shape=(1,), dtype_size=size,
                    start=start, end=end)


def test_disjoint_intervals_share_slot():
    plan = BufferPlan([interval(0, 0, 1), interval(1, 2, 3)])
    assert plan.num_slots == 1


def test_overlapping_intervals_get_distinct_slots():
    plan = BufferPlan([interval(0, 0, 5), interval(1, 1, 2),
                       interval(2, 3, 4)])
    # 0 overlaps both; 1 and 2 are disjoint from each other
    assert plan.num_slots == 2
    plan.verify_no_overlap_sharing()


def test_verify_catches_bad_assignment():
    plan = BufferPlan([interval(0, 0, 5), interval(1, 1, 2)])
    plan.intervals[1].slot = plan.intervals[0].slot
    with pytest.raises(AssertionError):
        plan.verify_no_overlap_sharing()


def test_evaluate_peak_le_naive():
    plan = BufferPlan([interval(0, 0, 1), interval(1, 2, 3),
                       interval(2, 1, 2)])
    stats = plan.evaluate({})
    assert stats["peak_bytes"] <= stats["naive_bytes"]
    assert stats["reuse_factor"] >= 1.0
    assert stats["values"] == 3


def test_plan_from_compiled_model():
    b = toy_mlp_graph()
    exe = compile_graph(b.graph)
    assert exe.buffer_plan is not None
    exe.buffer_plan.verify_no_overlap_sharing()
    stats = exe.buffer_plan.evaluate({"batch": 4, "seq": 8, "bs": 32})
    assert stats["peak_bytes"] <= stats["naive_bytes"]
    assert stats["values"] >= 1


def test_graph_outputs_live_to_end():
    b = GraphBuilder("g")
    x = b.parameter("x", (4,), f32)
    first = b.exp(x)
    second = b.neg(first)
    b.outputs(second, first)  # first is an output despite early use
    exe = compile_graph(b.graph)
    plan = exe.buffer_plan
    end = len(exe.kernels)
    out_ids = {n.id for n in exe.graph.outputs}
    for iv in plan.intervals:
        if iv.node_id in out_ids:
            assert iv.end == end


def test_engine_reports_memory(rng):
    b = toy_mlp_graph()
    exe = compile_graph(b.graph)
    engine = ExecutionEngine(exe, A10)
    __, stats = engine.run(toy_mlp_inputs(rng, 4, 8))
    memory = stats.details["memory"]
    assert memory["peak_bytes"] <= memory["naive_bytes"]
    # bigger inputs -> bigger peak
    __, stats2 = engine.run(toy_mlp_inputs(rng, 8, 16))
    assert stats2.details["memory"]["peak_bytes"] > memory["peak_bytes"]


def test_reuse_on_long_chain():
    """A long elementwise chain of unfused values reuses ping-pong
    buffers: peak stays O(2 buffers) while naive grows linearly."""
    b = GraphBuilder("g")
    x = b.parameter("x", (1024,), f32)
    value = x
    # alternate reduce and exp so fusion cannot swallow the whole chain
    for i in range(8):
        value = b.exp(value)
        value = b.reshape(b.reduce_sum(b.broadcast_to(
            value, (2, 1024)), axes=0), (1024,))
    b.outputs(value)
    from repro.core import CompileOptions, FusionConfig
    exe = compile_graph(b.graph, CompileOptions(
        fusion=FusionConfig.none()))
    stats = exe.buffer_plan.evaluate({})
    assert stats["reuse_factor"] > 2.0
