"""Shape-specialisation cache behaviour."""

import numpy as np

from repro.runtime import ShapeSpecializationCache, shape_signature


def test_signature_deterministic_and_order_free():
    a = {"x": np.zeros((2, 3)), "y": np.zeros((4,))}
    b = {"y": np.zeros((4,)), "x": np.zeros((2, 3))}
    assert shape_signature(a) == shape_signature(b)


def test_signature_distinguishes_shapes():
    a = {"x": np.zeros((2, 3))}
    b = {"x": np.zeros((3, 2))}
    assert shape_signature(a) != shape_signature(b)


def test_hit_miss_accounting():
    cache = ShapeSpecializationCache()
    builds = []
    for key in ("a", "b", "a", "a", "b"):
        cache.get_or_build(key, lambda: builds.append(key) or key)
    assert cache.misses == 2
    assert cache.hits == 3
    assert builds == ["a", "b"]
    assert cache.stats()["hit_rate"] == 3 / 5


def test_capacity_evicts_oldest_when_untouched():
    cache = ShapeSpecializationCache(capacity=2)
    cache.get_or_build("a", lambda: 1)
    cache.get_or_build("b", lambda: 2)
    cache.get_or_build("c", lambda: 3)  # evicts "a"
    assert "a" not in cache
    assert "b" in cache and "c" in cache
    cache.get_or_build("a", lambda: 4)
    assert cache.misses == 4
    assert cache.evictions == 2


def test_eviction_is_lru_a_hit_refreshes_recency():
    cache = ShapeSpecializationCache(capacity=2)
    cache.get_or_build("a", lambda: 1)
    cache.get_or_build("b", lambda: 2)
    cache.get_or_build("a", lambda: 0)  # hit: "b" becomes the LRU entry
    cache.get_or_build("c", lambda: 3)  # evicts "b", not insertion-order "a"
    assert "a" in cache and "c" in cache
    assert "b" not in cache
    assert cache.stats()["evictions"] == 1


def test_artifact_returned():
    cache = ShapeSpecializationCache()
    artifact, hit = cache.get_or_build("k", lambda: {"v": 1})
    assert artifact == {"v": 1}
    assert not hit
    artifact2, hit2 = cache.get_or_build("k", lambda: {"v": 2})
    assert artifact2 is artifact
    assert hit2
