"""Property suite for the symbolic (class-wide) memory planner.

Three claims, each over random graphs and the model zoo:

- **no aliasing of live data**: the class plan's own proof
  (``verify_sound``) and the independent L602 analyzer both come back
  clean on every pipeline artifact, and agree with each other;
- **peak soundness**: for every sampled in-class binding,
  ``peak_at(dims)`` is at least the peak the ground-truth oracle
  (``measure_peak_bytes``) actually observes, equals what the concrete
  plan charges, and lies inside the class peak interval — with
  ``assume_ranges`` the upper end is finite, so one number provably
  covers the whole class;
- **bit-identity**: the symbolic layer never changes what runs — the
  hosted engine over a symbolic-planned executable matches the legacy
  per-shape engine over a plain one, outputs and ``RunStats`` both.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import compile_graph
from repro.core.pipeline import CompileOptions
from repro.device import A10
from repro.fuzz import make_inputs
from repro.lint.interval_checks import check_memory_symbolic
from repro.numerics.resolve import bind_inputs
from repro.runtime import (ExecutionEngine, LegacyExecutionEngine,
                           measure_peak_bytes)

from ..models.test_zoo import small
from ..strategies import random_graph

RELAXED = settings(max_examples=20, deadline=None,
                   suppress_health_check=[HealthCheck.too_slow,
                                          HealthCheck.data_too_large])

ZOO_SAMPLE = ("bert", "crnn", "dien")


def resolved_dims(executable, inputs) -> dict:
    """The full dim environment the engine would run under."""
    program = executable.host_program
    dims = bind_inputs(program.params, inputs)
    program.resolution.run(dims)
    return dims


def identical(a, b) -> bool:
    a = np.asarray(a)
    b = np.asarray(b)
    return (a.shape == b.shape and a.dtype == b.dtype
            and a.tobytes() == b.tobytes())


# -- claim 1: reuse never aliases two live values ----------------------------

@given(st.data())
@RELAXED
def test_slot_reuse_proven_sound_on_random_graphs(data):
    graph = random_graph(data.draw)
    executable = compile_graph(graph, CompileOptions(verify_each_pass=True))
    symbolic = executable.symbolic_plan
    assert symbolic is not None
    violations = symbolic.verify_sound()
    assert violations == [], violations
    analyzer = check_memory_symbolic(executable.buffer_plan,
                                     symbolic.imap).by_code("L602")
    # The plan's own proof and the L602 analyzer are two independent
    # implementations of one judgement: both clean, never disagreeing.
    assert analyzer == [], [str(d) for d in analyzer]


@pytest.mark.parametrize("name", ZOO_SAMPLE)
def test_slot_reuse_proven_sound_on_zoo(name):
    model = small(name)
    executable = compile_graph(model.graph, CompileOptions(
        assume_ranges=model.axes))
    symbolic = executable.symbolic_plan
    assert symbolic.verify_sound() == []
    assert check_memory_symbolic(executable.buffer_plan,
                                 symbolic.imap).by_code("L602") == []


# -- claim 2: the symbolic peak bounds every in-class binding ----------------

@given(st.data())
@RELAXED
def test_peak_bounds_measured_peak_on_random_graphs(data):
    graph = random_graph(data.draw)
    binding = {"s": data.draw(st.integers(min_value=1, max_value=9))}
    inputs = make_inputs(graph, binding, seed=0)
    executable = compile_graph(graph)
    symbolic = executable.symbolic_plan
    dims = resolved_dims(executable, inputs)

    peak = symbolic.peak_at(dims)
    # Frozen slot expressions price the binding exactly like the
    # concrete plan (the delegation that makes stats bit-identical).
    assert peak == symbolic.evaluate(dims)["peak_bytes"]
    # The class interval contains every in-class binding's peak.
    interval = symbolic.peak_fact.interval
    assert interval.lo is None or interval.lo <= peak
    assert interval.hi is None or peak <= interval.hi
    # Ground truth: the plan never under-provisions what actually runs.
    measured = measure_peak_bytes(executable, inputs)
    assert measured["measured_peak_bytes"] <= peak


@pytest.mark.parametrize("name", ZOO_SAMPLE)
def test_proven_peak_covers_sampled_class_members(name):
    """With ``assume_ranges`` the class peak is one finite number; every
    sampled shape in the class must fit under it — that single bound is
    what :class:`repro.runtime.MemoryBudget` admits batches against."""
    model = small(name)
    executable = compile_graph(model.graph, CompileOptions(
        assume_ranges=model.axes))
    symbolic = executable.symbolic_plan
    assert symbolic.proven, "zoo axes must make the peak finitely provable"
    hi = symbolic.peak_hi_bytes()
    rng = np.random.default_rng(0)
    for draw in range(4):
        values = {axis: int(rng.integers(lo, hi_ax + 1))
                  for axis, (lo, hi_ax) in model.axes.items()}
        inputs = model.sample_inputs(rng, values)
        dims = resolved_dims(executable, inputs)
        peak = symbolic.peak_at(dims)
        assert peak <= hi
        assert peak == symbolic.evaluate(dims)["peak_bytes"]
        measured = measure_peak_bytes(executable, inputs)
        assert measured["measured_peak_bytes"] <= peak


# -- claim 3: bit-identity with the legacy per-shape planner -----------------

@given(st.data())
@RELAXED
def test_symbolic_layer_is_invisible_to_execution(data):
    """Outputs and RunStats match the legacy engine bit for bit, with
    the symbolic layer on and off — one plan per class changes what is
    *proven*, never what runs."""
    graph = random_graph(data.draw)
    binding = {"s": data.draw(st.integers(min_value=1, max_value=9))}
    inputs = make_inputs(graph, binding, seed=1)

    with_plan = compile_graph(graph)
    without = compile_graph(graph, CompileOptions(symbolic_memory=False))
    assert with_plan.symbolic_plan is not None
    assert without.symbolic_plan is None

    legacy_out, legacy_stats = LegacyExecutionEngine(without, A10).run(
        inputs)
    hosted = ExecutionEngine(with_plan, A10)
    for _attempt in ("record", "replay"):
        outputs, stats = hosted.run(inputs)
        assert len(outputs) == len(legacy_out)
        for expected, got in zip(legacy_out, outputs):
            assert identical(expected, got)
        assert stats == legacy_stats


def test_launch_plans_share_one_class_snapshot():
    """Every signature's frozen plan carries the *same* class-wide
    memory snapshot — replay never re-derives the class story."""
    model = small("bert")
    executable = compile_graph(model.graph, CompileOptions(
        assume_ranges=model.axes))
    engine = ExecutionEngine(executable, A10)
    rng = np.random.default_rng(7)
    snapshots = []
    for draw in range(3):
        values = {axis: int(rng.integers(lo, hi + 1))
                  for axis, (lo, hi) in model.axes.items()}
        inputs = model.sample_inputs(rng, values)
        engine.run(inputs)
        signature = engine.host_program.signature(inputs)
        plan = engine.peek_plan(signature)
        assert plan is not None
        snapshots.append(plan.memory_class)
    reference = executable.symbolic_plan.snapshot()
    assert all(snap == reference for snap in snapshots)
