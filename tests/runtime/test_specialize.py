"""Adaptive shape specialisation."""

import numpy as np
import pytest

from repro.core import compile_graph
from repro.device import A10
from repro.runtime import AdaptiveEngine, SpecializationOptions

from ..conftest import toy_mlp_graph, toy_mlp_inputs


@pytest.fixture(scope="module")
def executable():
    return compile_graph(toy_mlp_graph().graph)


def test_threshold_triggers_specialization(executable, rng):
    engine = AdaptiveEngine(executable, A10,
                            SpecializationOptions(threshold=3))
    inputs = toy_mlp_inputs(rng, 2, 5)
    outcomes = []
    for _ in range(5):
        __, stats = engine.run(inputs)
        outcomes.append(stats.details["specialized"])
    # calls 1, 2 generic; call 3 builds in background (still generic);
    # calls 4, 5 specialised
    assert outcomes == [False, False, False, True, True]
    assert engine.specializations_built == 1
    assert engine.background_compile_us > 0


def test_background_build_never_stalls(executable, rng):
    engine = AdaptiveEngine(executable, A10,
                            SpecializationOptions(threshold=1))
    inputs = toy_mlp_inputs(rng, 2, 5)
    for _ in range(3):
        __, stats = engine.run(inputs)
        assert stats.compile_time_us == 0


def test_foreground_build_stalls_once(executable, rng):
    engine = AdaptiveEngine(executable, A10, SpecializationOptions(
        threshold=1, background=False))
    inputs = toy_mlp_inputs(rng, 2, 5)
    __, first = engine.run(inputs)
    __, second = engine.run(inputs)
    assert first.compile_time_us > 0
    assert first.details["specialized"]  # served specialised immediately
    assert second.compile_time_us == 0


def test_specialized_calls_are_faster(executable, rng):
    engine = AdaptiveEngine(executable, A10,
                            SpecializationOptions(threshold=1))
    inputs = toy_mlp_inputs(rng, 4, 16)
    __, generic = engine.run(inputs)        # builds in background
    __, special = engine.run(inputs)        # served specialised
    assert special.details["specialized"]
    assert special.device_time_us < generic.device_time_us


def test_distinct_shapes_tracked_separately(executable, rng):
    engine = AdaptiveEngine(executable, A10,
                            SpecializationOptions(threshold=2))
    a = toy_mlp_inputs(rng, 2, 5)
    b = toy_mlp_inputs(rng, 3, 7)
    engine.run(a)
    engine.run(b)
    __, stats_a = engine.run(a)  # second 'a': builds, still generic
    assert not stats_a.details["specialized"]
    __, stats_a2 = engine.run(a)
    assert stats_a2.details["specialized"]
    __, stats_b = engine.run(b)  # b at 2nd call: builds now
    assert not stats_b.details["specialized"]
    assert engine.stats()["signatures_seen"] == 2


def test_max_specializations_cap(executable, rng):
    engine = AdaptiveEngine(executable, A10, SpecializationOptions(
        threshold=1, max_specializations=1))
    engine.run(toy_mlp_inputs(rng, 2, 5))
    engine.run(toy_mlp_inputs(rng, 3, 7))
    engine.run(toy_mlp_inputs(rng, 4, 9))
    assert engine.specializations_built == 1


def test_stats_unify_launch_plan_accounting(executable, rng):
    """Signature counting lives in the shared launch-plan cache."""
    engine = AdaptiveEngine(executable, A10,
                            SpecializationOptions(threshold=2))
    inputs = toy_mlp_inputs(rng, 2, 5)
    for _ in range(4):
        engine.run(inputs)
    stats = engine.stats()
    assert stats["signatures_seen"] == 1
    assert engine.plans.seen(engine._signature(inputs)) == 4
    assert stats["hot_signatures"][0][1] == 4
    plans = stats["launch_plans"]
    # generic records once, replays once; the specialised variant records
    # its own plan under a distinct tag and replays it thereafter
    assert plans["misses"] == 2
    assert plans["hits"] == 2
    assert plans["entries"] == 2


def test_generic_and_specialized_plans_never_collide(executable, rng):
    engine = AdaptiveEngine(executable, A10, SpecializationOptions(
        threshold=1, background=False))
    inputs = toy_mlp_inputs(rng, 3, 4)
    __, first = engine.run(inputs)   # specialised immediately (stalls)
    __, again = engine.run(inputs)   # replayed from the specialised plan
    assert first.details["specialized"] and again.details["specialized"]
    assert again.device_time_us == first.device_time_us
    sig = engine._signature(inputs)
    assert engine._specialized.peek_plan(sig) is not None
    assert engine._generic.peek_plan(sig) is None


def test_numerics_unchanged_by_specialization(executable, rng):
    from repro.interp import evaluate
    engine = AdaptiveEngine(executable, A10,
                            SpecializationOptions(threshold=1))
    inputs = toy_mlp_inputs(rng, 3, 6)
    (first,), __ = engine.run(inputs)
    (second,), stats = engine.run(inputs)
    assert stats.details["specialized"]
    assert np.allclose(first, second)
    (reference,) = evaluate(executable.graph, inputs)
    assert np.allclose(second, reference, atol=1e-5)
