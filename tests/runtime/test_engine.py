"""The execution engine: correctness, shape-genericity, cost accounting."""

import numpy as np
import pytest

from repro.core import CompileOptions, compile_graph
from repro.device import A10, T4
from repro.interp import evaluate
from repro.runtime import EngineOptions, ExecutionEngine

from ..conftest import softmax_graph, toy_mlp_graph, toy_mlp_inputs


@pytest.fixture(scope="module")
def toy_executable():
    b = toy_mlp_graph()
    return b.graph, compile_graph(b.graph)


def test_numerics_match_interpreter(toy_executable, rng):
    graph, exe = toy_executable
    engine = ExecutionEngine(exe, A10)
    inputs = toy_mlp_inputs(rng, 3, 5)
    (expected,) = evaluate(graph, inputs)
    (actual,), stats = engine.run(inputs)
    assert np.allclose(expected, actual, atol=1e-5)
    assert stats.kernels_launched > 0
    assert stats.device_time_us > 0


def test_one_compile_serves_every_shape(toy_executable, rng):
    graph, exe = toy_executable
    engine = ExecutionEngine(exe, A10)
    for batch, seq in [(1, 1), (4, 7), (2, 33), (9, 2)]:
        inputs = toy_mlp_inputs(rng, batch, seq)
        (expected,) = evaluate(graph, inputs)
        (actual,), __ = engine.run(inputs)
        assert actual.shape == (batch, seq, 16)
        assert np.allclose(expected, actual, atol=1e-5)


def test_cost_grows_with_input_size(toy_executable, rng):
    __, exe = toy_executable
    engine = ExecutionEngine(exe, A10)
    __, small = engine.run(toy_mlp_inputs(rng, 1, 2))
    __, large = engine.run(toy_mlp_inputs(rng, 16, 64))
    assert large.bytes_total > small.bytes_total
    assert large.device_time_us > small.device_time_us
    # kernel count is shape-independent: same compiled program
    assert large.kernels_launched == small.kernels_launched


def test_t4_slower_than_a10(toy_executable, rng):
    __, exe = toy_executable
    inputs = toy_mlp_inputs(rng, 8, 32)
    __, on_a10 = ExecutionEngine(exe, A10).run(inputs)
    __, on_t4 = ExecutionEngine(exe, T4).run(inputs)
    assert on_t4.device_time_us > on_a10.device_time_us


def test_fixed_schedule_option(rng):
    b = softmax_graph()
    exe = compile_graph(b.graph)
    x = rng.normal(size=(64, 128)).astype(np.float32)
    results = {}
    for name in ("row_per_warp", "row_per_block", "two_pass"):
        engine = ExecutionEngine(exe, A10,
                                 EngineOptions(fixed_schedule=name))
        (out,), stats = engine.run({"x": x})
        results[name] = stats.device_time_us
        assert np.allclose(out.sum(axis=-1), 1.0, atol=1e-5)
    # variants genuinely differ in simulated time
    assert len({round(v, 3) for v in results.values()}) > 1


def test_selector_not_worse_than_worst_fixed(rng):
    b = softmax_graph()
    exe = compile_graph(b.graph)
    x = rng.normal(size=(2048, 256)).astype(np.float32)
    fixed = []
    for name in ("row_per_warp", "row_per_block", "two_pass"):
        engine = ExecutionEngine(exe, A10,
                                 EngineOptions(fixed_schedule=name))
        __, stats = engine.run({"x": x})
        fixed.append(stats.device_time_us)
    __, auto = ExecutionEngine(exe, A10).run({"x": x})
    assert auto[1] if isinstance(auto, tuple) else True
    __, selected = ExecutionEngine(exe, A10).run({"x": x})
    assert selected.device_time_us <= max(fixed) + 1e-9


def test_dispatch_overhead_scales_with_kernels(toy_executable, rng):
    __, exe = toy_executable
    inputs = toy_mlp_inputs(rng, 2, 4)
    cheap = ExecutionEngine(exe, A10, EngineOptions(
        dispatch_us_per_kernel=0.0))
    costly = ExecutionEngine(exe, A10, EngineOptions(
        dispatch_us_per_kernel=10.0))
    __, s1 = cheap.run(inputs)
    __, s2 = costly.run(inputs)
    assert s2.host_time_us > s1.host_time_us
    assert s2.device_time_us == pytest.approx(s1.device_time_us)


def test_metadata_kernels_free(toy_executable, rng):
    graph, exe = toy_executable
    from repro.core.fusion.kinds import FusionKind
    # depending on fusion, reshapes may be absorbed; when a metadata
    # kernel exists it must not count as a launch.
    engine = ExecutionEngine(exe, A10)
    __, stats = engine.run(toy_mlp_inputs(rng, 2, 3))
    launching = [k for k in exe.kernels
                 if k.kind not in (FusionKind.METADATA, FusionKind.HOST)]
    expected = 0
    dims = {"batch": 2, "seq": 3, "bs": 6}
    for k in launching:
        sched = k.select_schedule(dims)
        expected += 1 + (sched.extra_launches if sched else 0)
    assert stats.kernels_launched == expected
