"""Host-program lowering: dense slots, release, signatures, describe."""

import numpy as np
import pytest

from repro.core import compile_graph
from repro.device import A10
from repro.interp import evaluate
from repro.numerics.resolve import BindingError
from repro.runtime import (ExecutionEngine, HostProgram, lower_executable,
                           shape_signature)

from ..conftest import toy_mlp_graph, toy_mlp_inputs


@pytest.fixture(scope="module")
def exe():
    return compile_graph(toy_mlp_graph().graph)


@pytest.fixture(scope="module")
def program(exe):
    return exe.host_program


def test_pipeline_lowers_at_compile_time(exe):
    assert isinstance(exe.host_program, HostProgram)


def test_slot_table_is_a_dense_bijection(program):
    slots = sorted(program.slot_of.values())
    assert slots == list(range(program.num_slots))
    assert len(program.env_template) == program.num_slots


def test_param_slots_follow_program_order(exe, program):
    assert [name for __, name in program.param_slots] \
        == [p.attrs["param_name"] for p in exe.graph.params]
    for (slot, __), param in zip(program.param_slots, exe.graph.params):
        assert slot == program.slot_of[param.id]


def test_constants_are_prebound_in_the_template(exe, program):
    constant_slots = set()
    for node, value in exe.constants.items():
        slot = program.slot_of[node.id]
        constant_slots.add(slot)
        assert program.env_template[slot] is value
    for slot, value in enumerate(program.env_template):
        assert (value is not None) == (slot in constant_slots)


def test_output_slots_map_the_graph_outputs(exe, program):
    assert program.output_slots == tuple(
        program.slot_of[node.id] for node in exe.graph.outputs)


def test_instructions_mirror_the_kernel_list(exe, program):
    assert len(program.instructions) == len(exe.kernels)
    for instr, kernel in zip(program.instructions, exe.kernels):
        assert instr.kernel is kernel
        assert instr.in_slots == tuple(
            program.slot_of[n.id] for n in kernel.input_nodes)
        assert instr.out_slots == tuple(
            program.slot_of[n.id] for n in kernel.output_nodes)


def _last_reads(program):
    last_read = {}
    for index, instr in enumerate(program.instructions):
        for slot in instr.in_slots:
            last_read[slot] = index
    return last_read


def test_release_is_exactly_the_last_use(program):
    last_read = _last_reads(program)
    outputs = set(program.output_slots)
    released = set()
    for index, instr in enumerate(program.instructions):
        for slot in instr.release:
            assert slot not in outputs, "a program output was released"
            assert last_read.get(slot, index) <= index, \
                "a released slot is read by a later instruction"
            assert slot not in released, "a slot was released twice"
            released.add(slot)
    # Every dead value is released: produced non-outputs plus every
    # param/constant slot that any instruction reads.
    param_const = {slot for slot, __ in program.param_slots}
    param_const.update(slot for slot, value in
                       enumerate(program.env_template) if value is not None)
    produced = {slot for instr in program.instructions
                for slot in instr.out_slots}
    expected = ((param_const & set(last_read)) | produced) - outputs
    assert released == expected


def test_stream_executes_and_drops_dead_values(exe, program, rng):
    inputs = toy_mlp_inputs(rng, 2, 3)
    dims = program.bind(inputs)
    env = program.env_template.copy()
    for slot, name in program.param_slots:
        env[slot] = np.ascontiguousarray(inputs[name])
    for instr in program.instructions:
        args = [env[s] for s in instr.in_slots]
        assert all(a is not None for a in args), "read a released slot"
        for slot, value in zip(instr.out_slots,
                               instr.kernel.execute(args, dims)):
            env[slot] = value
        for slot in instr.release:
            env[slot] = None
    live = {slot for slot, value in enumerate(env) if value is not None}
    # only the results (plus params/constants no instruction ever reads)
    # survive to the end of the stream
    param_const = {slot for slot, __ in program.param_slots}
    param_const.update(slot for slot, value in
                       enumerate(program.env_template) if value is not None)
    unread = param_const - set(_last_reads(program))
    assert live == set(program.output_slots) | unread
    (expected,) = evaluate(exe.graph, inputs)
    assert np.allclose(env[program.output_slots[0]], expected, atol=1e-5)


def test_bind_solves_derived_symbols(program, rng):
    dims = program.bind(toy_mlp_inputs(rng, 2, 3))
    assert dims["batch"] == 2 and dims["seq"] == 3
    assert dims["bs"] == 6  # reshape-merged symbol, solved by the plan


def test_signature_fast_path_matches_sorted_signature(program, rng):
    inputs = toy_mlp_inputs(rng, 4, 7)
    fast = program.signature(inputs)
    assert tuple(sorted(fast)) == shape_signature(inputs)


def test_signature_ignores_extra_inputs(program, rng):
    inputs = toy_mlp_inputs(rng, 2, 5)
    extended = dict(inputs, spare=np.zeros((3,), dtype=np.float32))
    assert program.signature(extended) == program.signature(inputs)


def test_signature_missing_param_raises_binding_error(program, rng):
    inputs = toy_mlp_inputs(rng, 2, 5)
    del inputs["w"]
    with pytest.raises(BindingError, match="'w'"):
        program.signature(inputs)


def test_engine_lowers_lazily_and_memoizes():
    exe = compile_graph(toy_mlp_graph().graph)
    exe.host_program = None  # e.g. a serde round-trip or a hand build
    first = ExecutionEngine(exe, A10)
    assert exe.host_program is first.host_program
    second = ExecutionEngine(exe, A10)
    assert second.host_program is first.host_program


def test_lower_executable_matches_the_pipeline_lowering(exe, program):
    again = lower_executable(exe)
    assert again.slot_of == program.slot_of
    assert again.output_slots == program.output_slots
    assert [(i.in_slots, i.out_slots, i.release)
            for i in again.instructions] \
        == [(i.in_slots, i.out_slots, i.release)
            for i in program.instructions]


def test_describe_lists_the_program(program):
    text = program.describe()
    assert "host program:" in text
    assert "param 'x'" in text
    assert "return" in text
    assert str(len(program.instructions) - 1) in text
