"""Unit tests for the symbolic memory planner and its consumers.

The property suite (``test_symplan_property``) proves the class-wide
claims over random graphs; here each piece is pinned down directly:
snapshot contents, budget arithmetic, the ground-truth measurement
oracle, the peak-aware reorder pass, and the batched-accounting
regression (byte totals scale with the batch, structure facts do not).
"""

import numpy as np
import pytest

from repro.core import compile_graph
from repro.core.pipeline import CompileOptions
from repro.device import A10
from repro.interp import evaluate
from repro.ir import GraphBuilder, f32
from repro.ir.verifier import verify
from repro.passes import PeakMemoryReorder
from repro.runtime import (ExecutionEngine, MemoryBudget,
                           measure_peak_bytes, scale_batched_memory)

from ..conftest import toy_mlp_graph, toy_mlp_inputs
from ..models.test_zoo import small


def compiled_bert():
    model = small("bert")
    executable = compile_graph(model.graph, CompileOptions(
        assume_ranges=model.axes))
    return model, executable


# -- the class-wide snapshot --------------------------------------------------

def test_snapshot_is_plain_class_wide_data():
    model, executable = compiled_bert()
    symbolic = executable.symbolic_plan
    snap = symbolic.snapshot()
    assert snap["slots"] == executable.buffer_plan.num_slots
    assert snap["values"] == len(executable.buffer_plan.intervals)
    assert snap["proven"] is True
    assert snap["constant_bytes"] == symbolic.constant_bytes > 0
    assert 0 <= snap["peak_lo_bytes"] <= snap["peak_hi_bytes"]
    assert "max(" in snap["expression"]


def test_provenance_chain_names_the_bound():
    _, executable = compiled_bert()
    chain = executable.symbolic_plan.provenance()
    assert chain and "class peak" in chain[0]


def test_unbounded_without_assume_ranges():
    exe = compile_graph(toy_mlp_graph().graph)
    symbolic = exe.symbolic_plan
    assert not symbolic.proven
    assert symbolic.peak_hi_bytes() is None
    assert symbolic.footprint_hi_bytes() is None
    assert symbolic.snapshot()["peak_hi_bytes"] is None


# -- MemoryBudget arithmetic --------------------------------------------------

def test_budget_rejects_bad_parameters():
    with pytest.raises(ValueError):
        MemoryBudget(0)
    with pytest.raises(ValueError):
        MemoryBudget(1 << 20, reserve_fraction=1.0)


def test_budget_fits_is_three_valued():
    budget = MemoryBudget(1000, reserve_fraction=0.1)
    assert budget.usable_bytes == 900
    assert budget.fits(900) is True
    assert budget.fits(901) is False
    assert budget.fits(None) is None  # cannot prove != fits


def test_budget_max_batch_size_arithmetic():
    _, executable = compiled_bert()
    symbolic = executable.symbolic_plan
    hi = symbolic.peak_hi_bytes()
    const = symbolic.constant_bytes
    budget = MemoryBudget(const + 3 * hi + hi // 2)
    assert budget.max_batch_size(symbolic) == 3
    assert budget.max_batch_size(symbolic, limit=2) == 2
    # Constants alone overflow the device: not even one member fits.
    assert MemoryBudget(max(const - 1, 1)).max_batch_size(symbolic) == 0


def test_budget_unprovable_peak_yields_none():
    exe = compile_graph(toy_mlp_graph().graph)
    budget = MemoryBudget(1 << 40)
    assert budget.max_batch_size(exe.symbolic_plan) is None
    assert budget.max_replicas(None) is None


def test_budget_max_replicas_shares_one_pool():
    budget = MemoryBudget(10_000)
    assert budget.max_replicas(3_000) == 3
    assert budget.max_replicas(3_000, limit=2) == 2
    assert budget.max_replicas(20_000) == 0


def test_footprint_scales_batch_but_not_constants():
    _, executable = compiled_bert()
    symbolic = executable.symbolic_plan
    one = symbolic.footprint_hi_bytes(1)
    four = symbolic.footprint_hi_bytes(4)
    assert four - symbolic.constant_bytes == \
        4 * (one - symbolic.constant_bytes)


# -- the ground-truth measurement oracle --------------------------------------

def test_measure_oracle_bounded_and_bit_identical(rng):
    model, executable = compiled_bert()
    inputs = model.sample_inputs(rng)
    expected, _ = ExecutionEngine(executable, A10).run(inputs)
    measured = measure_peak_bytes(executable, inputs)
    assert 0 < measured["measured_peak_bytes"]
    dims = {}
    program = executable.host_program
    from repro.numerics.resolve import bind_inputs
    dims = bind_inputs(program.params, inputs)
    program.resolution.run(dims)
    assert measured["measured_peak_bytes"] <= \
        executable.symbolic_plan.peak_at(dims)
    for ref, got in zip(expected, measured["outputs"]):
        ref, got = np.asarray(ref), np.asarray(got)
        assert ref.shape == got.shape and ref.dtype == got.dtype
        assert ref.tobytes() == got.tobytes()


# -- the peak-aware reorder pass -----------------------------------------------

def two_fat_branches():
    """Builder order materializes both big intermediates before either
    reduction — maximal concurrent liveness, so a peak-aware schedule
    has strict room to improve."""
    b = GraphBuilder("fat")
    x1 = b.parameter("x1", (1024,), f32)
    x2 = b.parameter("x2", (1024,), f32)
    e1 = b.exp(x1)
    e2 = b.exp(x2)
    r1 = b.reduce_max(e1, axes=0, keepdims=True)
    r2 = b.reduce_max(e2, axes=0, keepdims=True)
    b.outputs(b.add(r1, r2))
    return b.graph


def test_reorder_strictly_lowers_estimated_peak(rng):
    graph = two_fat_branches()
    inputs = {"x1": rng.normal(size=(1024,)).astype(np.float32),
              "x2": rng.normal(size=(1024,)).astype(np.float32)}
    before = [np.asarray(v) for v in evaluate(graph, inputs)]
    result = PeakMemoryReorder().run(graph)
    assert result["changed"] is True
    assert result["estimated_peak_after"] < \
        result["estimated_peak_before"]
    verify(graph)  # still a valid topological order
    after = [np.asarray(v) for v in evaluate(graph, inputs)]
    for ref, got in zip(before, after):
        assert ref.tobytes() == got.tobytes()


def test_reorder_keeps_incumbent_when_no_improvement():
    graph = compile_graph(two_fat_branches()).graph
    order = [n.id for n in graph.nodes]
    result = PeakMemoryReorder().run(graph)
    if not result["changed"]:
        assert [n.id for n in graph.nodes] == order
    assert result["estimated_peak_after"] <= \
        result["estimated_peak_before"]


def test_reorder_option_is_bit_identical(rng):
    builder = toy_mlp_graph()
    inputs = toy_mlp_inputs(rng)
    plain = compile_graph(toy_mlp_graph().graph)
    reordered = compile_graph(builder.graph, CompileOptions(
        reorder_for_memory=True))
    ref, _ = ExecutionEngine(plain, A10).run(inputs)
    got, _ = ExecutionEngine(reordered, A10).run(inputs)
    for a, b in zip(ref, got):
        a, b = np.asarray(a), np.asarray(b)
        assert a.tobytes() == b.tobytes()
    assert reordered.symbolic_plan.verify_sound() == []


# -- batched accounting (the E11 regression) -----------------------------------

def test_scale_batched_memory_scales_totals_only():
    memory = {"naive_bytes": 100, "peak_bytes": 60, "slots": 3,
              "values": 5, "reuse_factor": 100 / 60,
              "constant_bytes": 40, "total_peak_bytes": 100}
    scaled = scale_batched_memory(memory, 4)
    assert scaled["naive_bytes"] == 400
    assert scaled["peak_bytes"] == 240
    # Structure facts and the shared constant pool are batch-invariant.
    assert scaled["slots"] == 3
    assert scaled["values"] == 5
    assert scaled["reuse_factor"] == memory["reuse_factor"]
    assert scaled["constant_bytes"] == 40
    assert scaled["total_peak_bytes"] == 240 + 40


def test_batched_plan_memory_accounting(rng):
    """Regression: ``prepare_batched`` used to multiply *every* numeric
    memory field by the batch size — slot counts, value counts and the
    reuse factor included — and dropped constants from the peak."""
    model, executable = compiled_bert()
    engine = ExecutionEngine(executable, A10)
    inputs = model.sample_inputs(rng)
    signature = engine.host_program.signature(inputs)
    batch = 4
    plan = engine.prepare_batched(signature, batch)
    memory = plan.make_stats().details["memory"]
    dims = engine.host_program.bind_signature(signature)
    base = executable.buffer_plan.evaluate(dims)
    assert memory["slots"] == base["slots"]
    assert memory["values"] == base["values"]
    assert memory["reuse_factor"] == base["reuse_factor"]
    assert memory["naive_bytes"] == batch * base["naive_bytes"]
    assert memory["peak_bytes"] == batch * base["peak_bytes"]
    assert memory["constant_bytes"] == base["constant_bytes"]
    assert memory["total_peak_bytes"] == \
        batch * base["peak_bytes"] + base["constant_bytes"]
    # The class snapshot rides along, tagged with the batch size.
    assert plan.memory_class["batch"] == batch
    assert plan.memory_class["proven"] is True


def test_single_call_memory_unifies_constants_into_peak(rng):
    """One accounting story on every path: the per-call stats carry
    ``constant_bytes`` and ``total_peak_bytes = peak + constants``."""
    model, executable = compiled_bert()
    engine = ExecutionEngine(executable, A10)
    _, stats = engine.run(model.sample_inputs(rng))
    memory = stats.details["memory"]
    assert memory["constant_bytes"] == \
        executable.symbolic_plan.constant_bytes
    assert memory["total_peak_bytes"] == \
        memory["peak_bytes"] + memory["constant_bytes"]
