"""The tracing frontend."""

import numpy as np
import pytest

from repro import A10, ExecutionEngine, compile_graph, evaluate
from repro.frontend import TracedTensor, TraceError, constant, trace
from repro.ir import f32, i64


def test_basic_trace_structure():
    def model(x, w):
        return (x @ w).relu().softmax(axis=-1)

    graph = trace(model, [("x", ("batch", 16), f32),
                          ("w", (16, 8), f32)])
    ops = [n.op for n in graph]
    assert "dot" in ops and "relu" in ops and "softmax" in ops
    assert graph.param_names() == ["x", "w"]
    assert graph.name == "model"


def test_symbolic_dims_shared_across_inputs():
    def model(x, y):
        return x + y

    graph = trace(model, [("x", ("n", 4), f32), ("y", ("n", 4), f32)])
    x, y = graph.params
    assert x.shape[0] is y.shape[0]


def test_operators_and_scalars(rng):
    def model(x):
        return (2.0 * x + 1.0 - x / 4.0) ** 2.0

    graph = trace(model, [("x", (3,), f32)])
    xv = rng.normal(size=(3,)).astype(np.float32)
    (out,) = evaluate(graph, {"x": xv})
    assert np.allclose(out, (2 * xv + 1 - xv / 4) ** 2, atol=1e-5)


def test_reflected_operators(rng):
    def model(x):
        return 1.0 / (1.0 - x)

    graph = trace(model, [("x", (4,), f32)])
    xv = (rng.random(4) * 0.5).astype(np.float32)
    (out,) = evaluate(graph, {"x": xv})
    assert np.allclose(out, 1 / (1 - xv), atol=1e-5)


def test_reductions_and_reshape(rng):
    def model(x):
        flat = x.reshape("bs", 8)
        return flat.mean(axis=1, keepdims=True)

    graph = trace(model, [("x", ("a", "b", 8), f32)])
    xv = rng.normal(size=(2, 3, 8)).astype(np.float32)
    (out,) = evaluate(graph, {"x": xv})
    assert out.shape == (6, 1)
    assert np.allclose(out[:, 0], xv.reshape(6, 8).mean(axis=1),
                       atol=1e-5)


def test_transpose_and_T(rng):
    def model(x):
        return x.T @ x

    graph = trace(model, [("x", (4, 3), f32)])
    xv = rng.normal(size=(4, 3)).astype(np.float32)
    (out,) = evaluate(graph, {"x": xv})
    assert np.allclose(out, xv.T @ xv, atol=1e-4)


def test_comparison_and_where(rng):
    def model(x):
        return (x > 0.0).where(x, -x)

    graph = trace(model, [("x", (6,), f32)])
    xv = rng.normal(size=(6,)).astype(np.float32)
    (out,) = evaluate(graph, {"x": xv})
    assert np.allclose(out, np.abs(xv), atol=1e-6)


def test_constant_helper(rng):
    def model(x):
        w = constant(np.eye(4, dtype=np.float32))
        return x @ w

    graph = trace(model, [("x", (2, 4), f32)])
    xv = rng.normal(size=(2, 4)).astype(np.float32)
    (out,) = evaluate(graph, {"x": xv})
    assert np.allclose(out, xv)


def test_layer_norm_method(rng):
    def model(x):
        return x.layer_norm(np.ones(8, np.float32),
                            np.zeros(8, np.float32))

    graph = trace(model, [("x", ("n", 8), f32)])
    xv = rng.normal(size=(5, 8)).astype(np.float32)
    (out,) = evaluate(graph, {"x": xv})
    assert np.allclose(out.mean(axis=-1), 0.0, atol=1e-5)


def test_multiple_outputs():
    def model(x):
        return x.relu(), x.tanh()

    graph = trace(model, [("x", (4,), f32)])
    assert len(graph.outputs) == 2


def test_astype(rng):
    def model(x):
        return x.astype(i64)

    graph = trace(model, [("x", (3,), f32)])
    (out,) = evaluate(graph, {"x": np.ones(3, np.float32)})
    assert out.dtype == np.int64


def test_traced_graph_compiles_and_serves_dynamic(rng):
    def model(x, w):
        h = (x @ w).gelu()
        return h.softmax(axis=-1)

    graph = trace(model, [("x", ("batch", 16), f32), ("w", (16, 8), f32)])
    engine = ExecutionEngine(compile_graph(graph), A10)
    w = rng.normal(size=(16, 8)).astype(np.float32)
    for n in (1, 7, 30):
        x = rng.normal(size=(n, 16)).astype(np.float32)
        (got,), __ = engine.run({"x": x, "w": w})
        (want,) = evaluate(graph, {"x": x, "w": w})
        assert np.allclose(got, want, atol=1e-5)


def test_operations_outside_trace_rejected():
    def model(x):
        return x.relu()

    graph = trace(model, [("x", (4,), f32)])
    leaked = TracedTensor(graph.outputs[0])
    with pytest.raises(TraceError):
        leaked.exp()


def test_bad_return_type_rejected():
    with pytest.raises(TraceError):
        trace(lambda x: 42, [("x", (4,), f32)])


def test_bad_spec_rejected():
    with pytest.raises(TraceError):
        trace(lambda x: x, [("x", (4,))])


def test_untraceable_operand_rejected():
    def model(x):
        return x + "nope"

    with pytest.raises(TraceError):
        trace(model, [("x", (4,), f32)])
