"""The trace invariants shared by the test suite and the fuzz oracle."""

from repro.obs import (CapturingTracer, ROOT, check_balanced,
                       check_containment, check_kernel_accounting,
                       check_pass_coverage, trace_failures)

from .conftest import StepClock


def tracer() -> CapturingTracer:
    return CapturingTracer(clock=StepClock())


def well_formed() -> CapturingTracer:
    t = tracer()
    with t.span("compile:g"):
        with t.span("pass:a"):
            pass
        with t.span("pass:b"):
            pass
    with t.span("engine:run"):
        with t.span("engine:record") as rec:
            with t.span("kernel:k0") as k0:
                k0.set(launches=2)
            with t.span("kernel:k1") as k1:
                k1.set(launches=1)
            rec.set(kernels_launched=3)
    return t


def test_clean_trace_has_no_failures():
    assert trace_failures(well_formed(), pass_names=["a", "b"]) == []


def test_balanced_flags_a_leaked_begin():
    t = tracer()
    t.begin("leaked")
    with t.span("fine"):
        pass
    failures = check_balanced(t.spans)
    assert len(failures) == 1
    assert "leaked" in failures[0]


def test_events_are_never_unbalanced():
    t = tracer()
    t.event("cache:plan:hit")
    assert check_balanced(t.spans) == []


def test_containment_flags_a_child_outliving_its_parent():
    t = tracer()
    parent = t.begin("parent")
    child = t.begin("child", parent=parent)
    t.end(parent)
    t.end(child)                       # ends after the parent ended
    failures = check_containment(t.spans)
    assert len(failures) == 1
    assert "outlives" in failures[0]


def test_containment_flags_a_child_starting_early():
    t = tracer()
    early = t.begin("early", parent=ROOT)
    parent = t.begin("parent", parent=ROOT)
    early.parent = parent              # craft the broken edge directly
    parent.children.append(early)
    t.end(early)
    t.end(parent)
    failures = check_containment(t.spans)
    assert any("starts at" in f for f in failures)


def test_pass_coverage_demands_every_pass_once_in_order():
    t = tracer()
    with t.span("compile:g"):
        with t.span("pass:b"):         # out of order, and 'a' missing
            pass
    failures = check_pass_coverage(t.spans, pass_names=["a", "b"])
    assert len(failures) == 1
    assert "compile:g" in failures[0]


def test_pass_coverage_defaults_to_the_registered_pipeline():
    from repro.passes import default_pipeline

    t = tracer()
    with t.span("compile:g"):
        for p in default_pipeline():
            with t.span(f"pass:{p.name}"):
                pass
    assert check_pass_coverage(t.spans) == []


def test_pass_coverage_skips_compile_pool_spans_and_events():
    t = tracer()
    t.event("compile:ready", parent=ROOT)
    with t.span("compile:attempt"):
        pass
    # neither the pool's attempt spans nor its events are pipelines
    assert check_pass_coverage(t.spans, pass_names=["a"]) == []


def test_kernel_accounting_sums_launch_attrs():
    t = well_formed()
    assert check_kernel_accounting(t.spans) == []
    t.spans.one("kernel:k1").set(launches=5)   # break the ledger
    failures = check_kernel_accounting(t.spans)
    assert len(failures) == 1
    assert "sum to 7" in failures[0]


def test_kernel_accounting_requires_the_declared_total():
    t = tracer()
    with t.span("engine:record"):
        pass
    failures = check_kernel_accounting(t.spans)
    assert len(failures) == 1
    assert "kernels_launched" in failures[0]


def test_trace_failures_aggregates_every_check():
    t = tracer()
    t.begin("leaked")
    with t.span("engine:record"):
        pass
    failures = trace_failures(t, pass_names=[])
    assert len(failures) == 2
