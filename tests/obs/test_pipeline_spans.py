"""Trace-based pipeline tests: every registered pass, once, in order.

Compiles three zoo models (small configs) under a ``CapturingTracer``
and asserts the span tree — not logs, not pass-manager internals — shows
the full pipeline ran exactly as registered, with the stage spans and
attribute schema the observability contract promises.
"""

import pytest

from repro.core.pipeline import CompileOptions, compile_graph
from repro.models import build_model
from repro.obs import CapturingTracer, trace_failures
from repro.passes import default_pipeline

#: small configs — the point is the trace shape, not the model scale.
MODELS = {
    "bert": {"layers": 1, "hidden": 64, "heads": 2, "vocab": 128},
    "crnn": {"channels": 16, "charset": 32},
    "dien": {"items": 256, "embed_dim": 16},
}

STAGES = ["stage:analysis", "stage:fusion", "stage:codegen",
          "stage:memory", "stage:hostprog"]


@pytest.fixture(scope="module", params=sorted(MODELS),
                ids=sorted(MODELS))
def compiled(request):
    name = request.param
    tracer = CapturingTracer()
    graph = build_model(name, **MODELS[name]).graph
    executable = compile_graph(graph, CompileOptions(tracer=tracer))
    return name, tracer, executable


def test_one_compile_root_span(compiled):
    _name, tracer, _exe = compiled
    roots = tracer.roots()
    assert len(roots) == 1
    root = roots[0]
    assert root.name.startswith("compile:")
    assert root.finished


def test_every_registered_pass_exactly_once_in_order(compiled):
    _name, tracer, _exe = compiled
    expected = [f"pass:{p.name}" for p in default_pipeline()]
    assert tracer.named("pass:*").names() == expected


def test_stages_follow_the_passes_in_order(compiled):
    _name, tracer, _exe = compiled
    sequence = tracer.sequence()
    stage_positions = [sequence.index(stage) for stage in STAGES]
    assert stage_positions == sorted(stage_positions)
    last_pass = max(i for i, name in enumerate(sequence)
                    if name.startswith("pass:"))
    assert last_pass < stage_positions[0]


def test_pass_spans_carry_node_deltas(compiled):
    _name, tracer, _exe = compiled
    for span in tracer.named("pass:*"):
        attrs = span.attrs
        assert set(attrs) >= {"changed", "nodes_before", "nodes_after",
                              "node_delta"}
        assert attrs["node_delta"] == \
            attrs["nodes_after"] - attrs["nodes_before"]
    # the node count ledger chains: pass N ends where N+1 begins
    passes = list(tracer.named("pass:*"))
    for prev, nxt in zip(passes, passes[1:]):
        assert prev.attrs["nodes_after"] == nxt.attrs["nodes_before"]


def test_root_attrs_describe_the_artifact(compiled):
    _name, tracer, executable = compiled
    root = tracer.roots()[0]
    assert root.attrs["grade"] == "jit"
    assert root.attrs["kernels"] == len(executable.kernels)
    assert root.attrs["nodes"] > 0


def test_stage_spans_carry_their_headline_numbers(compiled):
    _name, tracer, executable = compiled
    codegen = tracer.spans.one("stage:codegen")
    assert codegen.attrs["kernels"] == len(executable.kernels)
    hostprog = tracer.spans.one("stage:hostprog")
    assert hostprog.attrs["slots"] == executable.host_program.num_slots


def test_trace_satisfies_every_invariant(compiled):
    _name, tracer, _exe = compiled
    assert trace_failures(tracer) == []


def test_pass_spans_compose_with_the_lint_blame_hook():
    """Tracing and per-pass lint blame share the pass loop: with
    ``lint_level`` on, each ``pass:*`` span also covers the blame
    snapshot, and the trace additionally carries ``stage:lint``."""
    from repro.lint import LintLevel

    tracer = CapturingTracer()
    graph = build_model("crnn", **MODELS["crnn"]).graph
    executable = compile_graph(
        graph, CompileOptions(tracer=tracer,
                              lint_level=LintLevel.DEFAULT))
    expected = [f"pass:{p.name}" for p in default_pipeline()]
    assert tracer.named("pass:*").names() == expected
    lint_stage = tracer.spans.one("stage:lint")
    assert lint_stage.attrs["findings"] == \
        len(executable.report.lint.diagnostics)
    assert trace_failures(tracer) == []
