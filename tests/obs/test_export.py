"""Exporters: Chrome trace_event payloads, the text tree, JSONL."""

import json

from repro.obs import (CapturingTracer, MetricsRegistry, render_tree,
                       to_chrome_trace, to_jsonl, write_artifacts)

from .conftest import StepClock


def traced() -> CapturingTracer:
    tracer = CapturingTracer(clock=StepClock())
    with tracer.span("compile:g", grade="full"):
        with tracer.span("pass:dce", node_delta=-2):
            pass
        tracer.event("cache:plan:miss", key=("main", "b=3"))
    return tracer


def test_chrome_trace_structure():
    payload = to_chrome_trace(traced().spans)
    events = payload["traceEvents"]
    # one metadata record naming the process, then the spans.
    assert events[0] == {"name": "process_name", "ph": "M", "pid": 1,
                        "tid": 1, "args": {"name": "repro"}}
    by_name = {e["name"]: e for e in events[1:]}
    root = by_name["compile:g"]
    assert root["ph"] == "X"
    assert root["ts"] == 0.0 and root["dur"] == 4.0
    assert root["args"] == {"grade": "full"}
    instant = by_name["cache:plan:miss"]
    assert instant["ph"] == "i" and instant["s"] == "t"
    # non-scalar attr values are repr'd into JSON-safe strings
    assert instant["args"]["key"] == repr(("main", "b=3"))
    # Perfetto-loadable means, at minimum, valid JSON end to end:
    assert json.loads(json.dumps(payload)) == payload


def test_chrome_trace_handles_open_spans():
    tracer = CapturingTracer(clock=StepClock())
    tracer.begin("leaked")
    events = to_chrome_trace(tracer.spans)["traceEvents"]
    assert events[1]["dur"] == 0.0


def test_render_tree_indents_by_depth():
    text = traced().tree()
    lines = text.splitlines()
    assert lines[0].startswith("compile:g [4.0us]")
    assert lines[1].startswith("  pass:dce [")
    assert lines[2].startswith("  * cache:plan:miss @")
    assert "{grade=full}" in lines[0]


def test_jsonl_is_lossless_and_ordered():
    tracer = traced()
    lines = [json.loads(line) for line in
             to_jsonl(tracer.spans).splitlines()]
    assert [row["sid"] for row in lines] == [0, 1, 2]
    assert [row["name"] for row in lines] == \
        ["compile:g", "pass:dce", "cache:plan:miss"]
    assert lines[1]["parent"] == 0 and lines[0]["parent"] is None
    assert lines[2]["kind"] == "event"
    assert lines[1]["attrs"] == {"node_delta": -2}


def test_write_artifacts_writes_every_requested_format(tmp_path):
    registry = MetricsRegistry()
    tracer = CapturingTracer(clock=StepClock(), metrics=registry)
    with tracer.span("s"):
        pass
    written = write_artifacts(tracer, tmp_path, prefix="case",
                              metrics=registry)
    assert set(written) == {"chrome", "tree", "jsonl", "metrics"}
    chrome = json.loads((tmp_path / "case_chrome.json").read_text())
    assert any(e["name"] == "s" for e in chrome["traceEvents"])
    assert "s [" in (tmp_path / "case_tree.txt").read_text()
    assert json.loads((tmp_path / "case_spans.jsonl").read_text())
    metrics = json.loads((tmp_path / "case_metrics.json").read_text())
    assert metrics["counters"]["spans.s"] == 1


def test_write_artifacts_respects_format_subset(tmp_path):
    tracer = traced()
    written = write_artifacts(tracer, tmp_path, formats=("chrome",))
    assert set(written) == {"chrome"}
    assert list(tmp_path.iterdir()) == [tmp_path / "trace_chrome.json"]


def test_render_tree_standalone_entry_point():
    tracer = traced()
    assert render_tree(tracer.roots()) == tracer.tree()
