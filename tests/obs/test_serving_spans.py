"""Serving traces under the virtual clock: exact sequences, exact times.

Every test drives a ``ServingEngine`` on a ``VirtualScheduler`` with the
tracer on the scheduler's clock, so the asserted span sequences and
timestamps are deterministic properties of the schedule — rerunning
cannot change a single number.
"""

from repro.fuzz import CompileFaultInjector
from repro.obs import check_balanced, check_containment
from repro.serving import CompileState

from ..conftest import toy_mlp_inputs
from .conftest import make_traced_serving


def lifecycle(tracer) -> list[str]:
    """Creation-order names with the noisy kernel:* spans filtered."""
    return [name for name in tracer.sequence()
            if not name.startswith("kernel:")]


def test_cold_fallback_compile_warm_handoff_exact_sequence(toy_exe, rng):
    scheduler, tracer, serving = make_traced_serving(toy_exe, seed=1)
    inputs = toy_mlp_inputs(rng, 3, 5)

    cold = serving.submit("mlp", inputs)
    scheduler.run_until_idle()
    warm = serving.submit("mlp", inputs)
    scheduler.run_until_idle()

    assert cold.response.path == "fallback"
    assert warm.response.path == "fast"
    assert lifecycle(tracer) == [
        # cold request: admitted, routed to the fallback while the
        # background compile attempt starts...
        "request", "serving:admit", "serving:route",
        "compile:attempt", "fallback:run", "serving:respond",
        # ...the pool worker freezes the plan and installs it...
        "engine:prepare", "compile:ready",
        # ...so the warm request replays it on the fast path.
        "request", "serving:admit", "serving:route",
        "engine:run", "cache:plan:hit", "engine:replay",
        "serving:respond",
    ]


def test_request_span_timestamps_are_exact_virtual_times(toy_exe, rng):
    scheduler, tracer, serving = make_traced_serving(toy_exe, seed=1)
    inputs = toy_mlp_inputs(rng, 3, 5)
    ticket = serving.submit("mlp", inputs)
    scheduler.run_until_idle()

    request = tracer.spans.one("request")
    # submitted at virtual t=0; the span closes exactly when the
    # response is produced, so duration == reported latency.
    assert request.start_us == 0.0
    assert request.end_us == ticket.response.latency_us
    respond = tracer.spans.one("serving:respond")
    assert respond.start_us == request.end_us
    assert respond.parent is request


def test_compile_attempt_span_measures_the_compile_cost(toy_exe, rng):
    scheduler, tracer, serving = make_traced_serving(toy_exe, seed=1)
    serving.submit("mlp", toy_mlp_inputs(rng, 3, 5))
    scheduler.run_until_idle()

    attempt = tracer.spans.one("compile:attempt")
    # attempts are roots (they outlive the request that triggered them)
    assert attempt.parent is None
    assert attempt.attrs["outcome"] == "ready"
    assert attempt.attrs["attempt"] == 1
    assert attempt.duration_us == \
        serving.model("mlp").compile_duration_us
    ready = tracer.spans.one("compile:ready")
    assert ready.start_us == attempt.end_us


def test_request_span_attribute_schema(toy_exe, rng):
    scheduler, tracer, serving = make_traced_serving(toy_exe, seed=1)
    serving.submit("mlp", toy_mlp_inputs(rng, 3, 5))
    scheduler.run_until_idle()
    request = tracer.spans.one("request")
    assert request.attrs["model"] == "mlp"
    assert "x[3x5x32]" in request.attrs["signature"]
    assert request.attrs["status"] == "ok"
    assert request.attrs["path"] == "fallback"
    route = tracer.spans.one("serving:route")
    assert route.attrs["path"] == "fallback"
    assert route.parent is request
    fallback = tracer.spans.one("fallback:run")
    assert fallback.parent is request


def test_quarantine_exact_sequence(toy_exe, rng):
    scheduler, tracer, serving = make_traced_serving(
        toy_exe, seed=1,
        compile_fault=CompileFaultInjector(permanent=True))
    inputs = toy_mlp_inputs(rng, 3, 5)

    cold = serving.submit("mlp", inputs)
    scheduler.run_until_idle()
    pinned = serving.submit("mlp", inputs)
    scheduler.run_until_idle()

    assert cold.response.ok and pinned.response.ok
    assert pinned.response.path == "quarantined"
    assert serving.compile_state(
        "mlp", cold.request.signature) is CompileState.QUARANTINED
    assert lifecycle(tracer) == [
        "request", "serving:admit", "serving:route",
        "compile:attempt", "fallback:run", "serving:respond",
        "compile:quarantine",
        # the quarantined signature routes straight to the fallback,
        # with no new compile attempt — quarantine means stop trying.
        "request", "serving:admit", "serving:route",
        "fallback:run", "serving:respond",
    ]
    attempt = tracer.spans.one("compile:attempt")
    assert attempt.attrs["outcome"] == "permanent_failure"
    quarantine = tracer.spans.one("compile:quarantine")
    assert quarantine.start_us == attempt.end_us


def test_transient_failure_traces_one_span_per_attempt(toy_exe, rng):
    scheduler, tracer, serving = make_traced_serving(
        toy_exe, seed=1,
        compile_fault=CompileFaultInjector(transient_attempts=1))
    serving.submit("mlp", toy_mlp_inputs(rng, 3, 5))
    scheduler.run_until_idle()

    attempts = tracer.named("compile:attempt")
    assert attempts.attr_values("attempt") == [1, 2]
    assert attempts.attr_values("outcome") == \
        ["transient_failure", "ready"]
    # the retry starts when the failed attempt ends (same worker, no
    # other jobs queued)
    assert attempts[1].start_us >= attempts[0].end_us
    assert len(tracer.named("compile:ready")) == 1


def test_coalesced_requests_trace_one_attempt(toy_exe, rng):
    scheduler, tracer, serving = make_traced_serving(toy_exe, seed=1)
    inputs = toy_mlp_inputs(rng, 3, 5)
    for _ in range(3):
        serving.submit("mlp", inputs)
    scheduler.run_until_idle()
    assert len(tracer.named("compile:attempt")) == 1
    assert len(tracer.named("compile:coalesced")) == 2
    assert len(tracer.named("request")) == 3


def test_shed_request_traces_the_shed_event(toy_exe, rng):
    scheduler, tracer, serving = make_traced_serving(
        toy_exe, seed=1, queue_capacity=1)
    inputs = toy_mlp_inputs(rng, 3, 5)
    serving.submit("mlp", inputs)            # in service
    serving.submit("mlp", inputs)            # waiting (fills the queue)
    shed = serving.submit("mlp", inputs)     # overflow -> shed
    scheduler.run_until_idle()
    assert not shed.response.ok
    event = tracer.spans.one("serving:shed")
    assert event.parent.attrs["id"] == shed.request.id
    assert event.parent.attrs["status"] == "shed"


def test_serving_trace_is_balanced_and_contained(toy_exe, rng):
    scheduler, tracer, serving = make_traced_serving(
        toy_exe, seed=1,
        compile_fault=CompileFaultInjector(transient_attempts=1,
                                           permanent_every=3))
    for batch in (3, 4, 5, 3, 4, 5):
        serving.submit("mlp", toy_mlp_inputs(rng, batch, 5))
        scheduler.run_until_idle()
    spans = tracer.spans
    assert check_balanced(spans) == []
    assert check_containment(spans) == []
    # every request span closed with a status
    assert all("status" in r.attrs for r in spans.named("request"))
