"""L5xx lint: span-name hygiene of the registered pass pipeline."""

from repro.lint import CODE_REGISTRY, check_pass_spans
from repro.lint.__main__ import main
from repro.passes.base import Pass


class _Named(Pass):
    def __init__(self, name: str) -> None:
        self.name = name

    def run(self, graph):
        return {}


def test_registered_pipeline_is_clean():
    sink = check_pass_spans()
    assert not sink.diagnostics, sink.render()


def test_missing_name_is_L501():
    unset = Pass()                      # base-class placeholder name
    sink = check_pass_spans(passes=[_Named(""), unset])
    assert [d.code for d in sink] == ["L501", "L501"]
    assert all(d.severity.name == "ERROR" for d in sink)


def test_duplicate_name_is_L502():
    sink = check_pass_spans(passes=[_Named("dce"), _Named("dce")])
    assert sink.codes() == {"L502"}
    assert "dce" in sink.by_code("L502")[0].message


def test_malformed_name_is_L503():
    sink = check_pass_spans(
        passes=[_Named("DeadCode"), _Named("has space"),
                _Named("9starts-with-digit"), _Named("fine-name_2")])
    assert [d.code for d in sink] == ["L503"] * 3


def test_l5xx_codes_are_registered():
    for code in ("L501", "L502", "L503"):
        info = CODE_REGISTRY[code]
        assert info.analyzer == "obs"


def test_cli_pass_spans_gate_is_green(capsys):
    assert main(["--pass-spans"]) == 0
    out = capsys.readouterr().out
    assert "pipeline:pass-spans: OK" in out


def test_cli_pass_spans_counts_as_a_target(capsys):
    main(["--pass-spans", "-q"])
    assert "linted 1 target(s)" in capsys.readouterr().out
