"""Engine traces: record vs replay, kernel ledgers, cache events."""

import pytest

from repro.device import A10
from repro.obs import CapturingTracer, trace_failures
from repro.runtime import ExecutionEngine
from repro.runtime.engine import EngineOptions, LegacyExecutionEngine

from ..conftest import toy_mlp_inputs


@pytest.fixture
def traced_engine(toy_exe):
    tracer = CapturingTracer()
    return tracer, ExecutionEngine(toy_exe, A10, tracer=tracer)


def test_first_call_records_then_second_replays(traced_engine, rng):
    tracer, engine = traced_engine
    inputs = toy_mlp_inputs(rng, 3, 5)
    engine.run(inputs)
    engine.run(inputs)

    runs = tracer.named("engine:run")
    assert len(runs) == 2
    record_run, replay_run = runs[0], runs[1]
    assert record_run.attrs["path"] == "record"
    assert record_run.attrs["cache_hit"] is False
    assert replay_run.attrs["path"] == "replay"
    assert replay_run.attrs["cache_hit"] is True
    assert tracer.spans.one("engine:record").parent is record_run
    assert tracer.spans.one("engine:replay").parent is replay_run
    # both carry the call signature (formatted input extents)
    signature = record_run.attrs["signature"]
    assert "x[3x5x32]" in signature and signature == \
        replay_run.attrs["signature"]


def test_cache_hit_attrs_match_the_plan_cache_stats(traced_engine, rng):
    tracer, engine = traced_engine
    for batch in (3, 3, 4, 3):
        engine.run(toy_mlp_inputs(rng, batch, 5))
    stats = engine.plans.stats()
    hits = tracer.named("cache:plan:hit")
    misses = tracer.named("cache:plan:miss")
    assert len(hits) == stats["hits"] == 2
    assert len(misses) == stats["misses"] == 2
    # and the per-run cache_hit attrs tell the same story
    assert tracer.named("engine:run").attr_values("cache_hit") == \
        [False, True, False, True]
    # every cache event nests inside the engine:run that caused it
    for event in list(hits) + list(misses):
        assert event.parent.name == "engine:run"


def test_record_kernel_ledger_sums_to_run_stats(traced_engine, rng):
    tracer, engine = traced_engine
    _, stats = engine.run(toy_mlp_inputs(rng, 3, 5))
    record = tracer.spans.one("engine:record")
    assert record.attrs["kernels_launched"] == stats.kernels_launched
    kernels = tracer.spans.within(record).named("kernel:*")
    assert len(kernels) == len(engine.host_program.instructions)
    assert sum(k.attrs["launches"] for k in kernels) == \
        stats.kernels_launched
    # record-path kernel spans carry their output slots
    assert all("slots" in k.attrs for k in kernels)
    assert trace_failures(tracer, pass_names=[]) == []


def test_replay_kernel_spans_have_no_launch_attrs(traced_engine, rng):
    tracer, engine = traced_engine
    inputs = toy_mlp_inputs(rng, 3, 5)
    engine.run(inputs)
    engine.run(inputs)
    replay = tracer.spans.one("engine:replay")
    kernels = tracer.spans.within(replay).named("kernel:*")
    assert len(kernels) == len(engine.host_program.instructions)
    # replay charges the frozen aggregate, not kernel-by-kernel
    assert all("launches" not in k.attrs for k in kernels)


def test_traced_run_is_bit_identical_to_untraced(toy_exe, rng):
    inputs = toy_mlp_inputs(rng, 3, 5)
    plain = ExecutionEngine(toy_exe, A10)
    traced = ExecutionEngine(toy_exe, A10, tracer=CapturingTracer())
    for _ in range(2):                 # record, then replay
        expected_outs, expected = plain.run(inputs)
        actual_outs, actual = traced.run(inputs)
        assert actual == expected
        for e, a in zip(expected_outs, actual_outs):
            assert e.tobytes() == a.tobytes()


def test_prepare_span_matches_a_recorded_first_call(traced_engine, rng):
    tracer, engine = traced_engine
    inputs = toy_mlp_inputs(rng, 3, 5)
    plan = engine.prepare(inputs)
    span = tracer.spans.one("engine:prepare")
    assert span.attrs["kernels_launched"] == \
        plan.make_stats().kernels_launched
    assert "x[3x5x32]" in span.attrs["signature"]
    # prepared means warm: the next run replays
    engine.run(inputs)
    assert tracer.named("engine:record").names() == []
    assert len(tracer.named("engine:replay")) == 1


def test_eviction_events_match_cache_stats(toy_exe, rng):
    tracer = CapturingTracer()
    engine = ExecutionEngine(toy_exe, A10,
                             EngineOptions(plan_capacity=1),
                             tracer=tracer)
    for batch in (3, 4, 5):
        engine.run(toy_mlp_inputs(rng, batch, 5))
    assert engine.plans.stats()["evictions"] == 2
    evictions = tracer.named("cache:plan:evict")
    assert len(evictions) == 2
    # keys carry the plan tag plus the formatted signature
    assert all(e.attrs["key"].startswith("main:x[")
               for e in evictions)


def test_legacy_engine_span_and_ledger(toy_exe, rng):
    tracer = CapturingTracer()
    inputs = toy_mlp_inputs(rng, 3, 5)
    legacy = LegacyExecutionEngine(toy_exe, A10, tracer=tracer)
    outputs, stats = legacy.run(inputs)
    run = tracer.spans.one("engine:legacy_run")
    assert run.attrs["kernels_launched"] == stats.kernels_launched
    kernels = tracer.spans.within(run).named("kernel:*")
    assert len(kernels) == len(toy_exe.kernels)
    assert sum(k.attrs["launches"] for k in kernels) == \
        stats.kernels_launched
    # and the traced legacy run still matches the untraced one bitwise
    expected_outs, expected = LegacyExecutionEngine(toy_exe, A10).run(
        inputs)
    assert stats == expected
    for e, a in zip(expected_outs, outputs):
        assert e.tobytes() == a.tobytes()


def test_untraced_engine_records_nothing(toy_exe, rng):
    engine = ExecutionEngine(toy_exe, A10)
    engine.run(toy_mlp_inputs(rng, 3, 5))
    assert engine.tracer.enabled is False
