"""Shared fixtures for the trace-based observability suite.

The deterministic backbone: a manually stepped clock for unit tests (so
durations are exact), the compiled toy model for engine traces, and a
traced serving constructor mirroring ``tests/serving/conftest.py`` —
every serving trace here runs under the virtual clock, so span
timestamps are exact properties of the schedule.
"""

from __future__ import annotations

import pytest

from repro.core import compile_graph
from repro.device import A10
from repro.obs import CapturingTracer
from repro.serving import (ServingEngine, ServingOptions,
                           SignatureCompileCost, VirtualScheduler)

from ..conftest import toy_mlp_graph

#: small compile cost so tests exercise ordering, not magnitude.
FAST_COMPILE = SignatureCompileCost(fixed_us=10_000.0, per_kernel_us=100.0)


class StepClock:
    """now_us() returns 0, 1, 2, ... — one tick per read.

    Every span gets a distinct start and end, and durations count the
    clock reads in between; unit tests assert exact numbers against it.
    """

    def __init__(self) -> None:
        self.ticks = 0

    def now_us(self) -> float:
        now = self.ticks
        self.ticks += 1
        return float(now)


@pytest.fixture
def step_tracer() -> CapturingTracer:
    return CapturingTracer(clock=StepClock())


@pytest.fixture(scope="session")
def toy_exe():
    return compile_graph(toy_mlp_graph().graph)


@pytest.fixture
def device():
    return A10


def make_traced_serving(exe, seed=0, compile_fault=None,
                        **option_overrides):
    """(scheduler, tracer, engine) with the toy model registered.

    The tracer runs on the scheduler's virtual clock, so every span
    start/end is an exact virtual timestamp.
    """
    option_overrides.setdefault("compile_cost", FAST_COMPILE)
    options = ServingOptions(**option_overrides)
    scheduler = VirtualScheduler(seed=seed)
    tracer = CapturingTracer(clock=scheduler.clock)
    engine = ServingEngine(A10, scheduler, options,
                           compile_fault=compile_fault, tracer=tracer)
    engine.register_model("mlp", exe)
    return scheduler, tracer, engine
