"""Tracing must be a pure observer: bit-identical outputs and stats.

The hypothesis property runs the same inputs through an untraced engine
pair and a ``CapturingTracer``-instrumented pair (record + replay on
both sides) and demands byte-equal outputs and dataclass-equal
``RunStats``.  The zoo and the regression corpus replay the same
property deterministically; the corpus replay also goes through the
fuzzer's OBS oracle so this suite and ``python -m repro.fuzz --obs``
cannot drift apart.
"""

from pathlib import Path

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.pipeline import CompileOptions, compile_graph
from repro.device import A10
from repro.fuzz import DifferentialOracle, load_case
from repro.fuzz.corpus import iter_corpus
from repro.models import build_model
from repro.obs import CapturingTracer, trace_failures
from repro.runtime import ExecutionEngine

from ..conftest import toy_mlp_inputs

CORPUS_DIR = Path(__file__).parent.parent / "regressions" / "corpus"

ZOO = {
    "bert": {"layers": 1, "hidden": 64, "heads": 2, "vocab": 128},
    "crnn": {"channels": 16, "charset": 32},
    "dien": {"items": 256, "embed_dim": 16},
}


def assert_identical_runs(executable, inputs_list) -> None:
    """Run traced and untraced engines in lockstep; demand identity."""
    plain = ExecutionEngine(executable, A10)
    tracer = CapturingTracer()
    traced = ExecutionEngine(executable, A10, tracer=tracer)
    for inputs in inputs_list:
        expected_outs, expected = plain.run(inputs)
        actual_outs, actual = traced.run(inputs)
        assert actual == expected          # RunStats dataclass equality
        assert len(actual_outs) == len(expected_outs)
        for e, a in zip(expected_outs, actual_outs):
            assert e.dtype == a.dtype and e.shape == a.shape
            assert e.tobytes() == a.tobytes()
    assert trace_failures(tracer, pass_names=[]) == []


@given(batch=st.integers(min_value=1, max_value=6),
       seq=st.integers(min_value=1, max_value=9),
       seed=st.integers(min_value=0, max_value=2**32 - 1))
@settings(max_examples=25, deadline=None)
def test_property_tracing_never_changes_results(toy_exe, batch, seq,
                                                seed):
    rng = np.random.default_rng(seed)
    inputs = toy_mlp_inputs(rng, batch, seq)
    # same signature twice: the identity must hold on the record path
    # AND the replay path.
    assert_identical_runs(toy_exe, [inputs, inputs])


@pytest.mark.parametrize("name", sorted(ZOO))
def test_zoo_models_bit_identical_under_tracing(name):
    model = build_model(name, **ZOO[name])
    rng = np.random.default_rng(7)
    executable = compile_graph(model.graph)
    inputs = model.sample_inputs(rng)
    assert_identical_runs(executable, [inputs, inputs])


@pytest.mark.parametrize("name", sorted(ZOO))
def test_compiling_under_a_tracer_is_equivalent(name):
    """The *compile* must be a pure observer too: an executable built
    with a tracer attached behaves identically to one built without."""
    model = build_model(name, **ZOO[name])
    rng = np.random.default_rng(11)
    inputs = model.sample_inputs(rng)
    plain_exe = compile_graph(model.graph)
    traced_exe = compile_graph(model.graph,
                               CompileOptions(tracer=CapturingTracer()))
    expected_outs, expected = ExecutionEngine(plain_exe, A10).run(inputs)
    actual_outs, actual = ExecutionEngine(traced_exe, A10).run(inputs)
    assert actual == expected
    for e, a in zip(expected_outs, actual_outs):
        assert e.tobytes() == a.tobytes()


CASES = iter_corpus(CORPUS_DIR)


@pytest.mark.parametrize("path", CASES, ids=lambda p: p.stem)
def test_corpus_replays_through_the_obs_oracle(path):
    """Every regression case passes the fuzzer's trace oracle: traced
    vs untraced bit-identity plus the trace invariants."""
    graph, bindings, meta = load_case(path)
    oracle = DifferentialOracle(obs=True)
    result = oracle.check_case(graph, bindings,
                               input_seed=int(meta.get("input_seed", 0)))
    assert result.ok, "; ".join(str(f) for f in result.failures)
