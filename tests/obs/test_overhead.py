"""Perf smoke: instrumentation off-path cost is bounded below 2%.

The claim the whole design hangs on: with the default ``NullTracer``, an
instrumented ``ExecutionEngine.run`` pays one ``tracer.enabled``
attribute lookup and nothing else.  This gate measures it against a
hand-written replica of the *pre-instrumentation* warm replay path —
same signature computation, same cache access, same ``_replay`` — on the
E15 host-bound bert config, interleaved best-of so frequency and cache
drift hit both runners alike (the E15 methodology).

Wall-clock measurement is inherently noisy; the gate takes the best of
several interleaved repeats and allows up to three measurement attempts
before declaring a real regression.
"""

import time

import numpy as np

from repro.bench.experiments import E15_MODELS, _shape_points
from repro.core.pipeline import compile_graph
from repro.device.profiles import device_named
from repro.models import build_model
from repro.runtime import ExecutionEngine

#: hard bound from the observability contract: off-path overhead < 2%.
MAX_OVERHEAD = 0.02
REPEATS = 9
ATTEMPTS = 3


def replica_run(engine, inputs):
    """The warm path exactly as it read before instrumentation.

    ``ExecutionEngine.run`` today is this plus the one
    ``self.tracer.enabled`` branch under test.
    """
    program = engine.host_program
    signature = program.signature(inputs)
    engine.plans.note(signature)
    plan = engine.plans.get(("main", signature))
    return engine._replay(plan, inputs)


def measure_once(engine, inputs_list) -> float:
    """Relative overhead of engine.run over the replica, best-of."""
    def instrumented() -> None:
        for inputs in inputs_list:
            engine.run(inputs)

    def replica() -> None:
        for inputs in inputs_list:
            replica_run(engine, inputs)

    for run in (replica, instrumented):        # warmup both
        run()
    best = {"replica": float("inf"), "instrumented": float("inf")}
    for _ in range(REPEATS):
        for name, run in (("replica", replica),
                          ("instrumented", instrumented)):
            start = time.perf_counter()
            run()
            best[name] = min(best[name], time.perf_counter() - start)
    return best["instrumented"] / best["replica"] - 1.0


def test_null_tracer_overhead_is_below_two_percent():
    device = device_named("A10")
    model = build_model("bert", **E15_MODELS["bert"])
    executable = compile_graph(model.graph)
    rng = np.random.default_rng(0)
    inputs_list = [model.make_inputs(rng, **values)
                   for values in _shape_points(model, 3)]
    engine = ExecutionEngine(executable, device)    # default: NullTracer
    assert engine.tracer.enabled is False
    for inputs in inputs_list:                      # warm every plan
        engine.run(inputs)

    overheads = []
    for _ in range(ATTEMPTS):
        overhead = measure_once(engine, inputs_list)
        overheads.append(overhead)
        if overhead < MAX_OVERHEAD:
            break
    assert min(overheads) < MAX_OVERHEAD, (
        f"NullTracer off-path overhead measured at "
        f"{[f'{o:.2%}' for o in overheads]} across {ATTEMPTS} attempts "
        f"(gate {MAX_OVERHEAD:.0%})")


def test_replica_and_instrumented_paths_agree_bitwise():
    """The replica is only a fair baseline if it is the same code path:
    same outputs, same stats as the instrumented warm run."""
    device = device_named("A10")
    model = build_model("bert", **E15_MODELS["bert"])
    executable = compile_graph(model.graph)
    rng = np.random.default_rng(0)
    inputs = model.sample_inputs(rng)
    engine = ExecutionEngine(executable, device)
    engine.run(inputs)                              # record the plan
    expected_outs, expected = engine.run(inputs)
    actual_outs, actual = replica_run(engine, inputs)
    assert actual == expected
    for e, a in zip(expected_outs, actual_outs):
        assert e.tobytes() == a.tobytes()
