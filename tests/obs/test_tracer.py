"""Tracer unit tests: nesting, clocks, the null path, SpanSet queries."""

import threading

import pytest

from repro.obs import (NULL_TRACER, CapturingTracer, NullTracer, ROOT,
                       Tracer, resolve_tracer)
from repro.obs.tracer import _NULL_CONTEXT

from .conftest import StepClock


# ---------------------------------------------------------------------------
# context-manager nesting
# ---------------------------------------------------------------------------

def test_spans_nest_on_the_context_stack(step_tracer):
    with step_tracer.span("outer") as outer:
        with step_tracer.span("inner") as inner:
            pass
    assert inner.parent is outer
    assert outer.children == [inner]
    assert outer.parent is None
    assert step_tracer.sequence() == ["outer", "inner"]


def test_durations_come_from_the_injected_clock():
    tracer = Tracer(clock=StepClock())
    with tracer.span("a") as a:        # start at 0
        with tracer.span("b") as b:    # start at 1, end at 2
            pass
    # a ends at 3: strictly after its child, exactly as many clock
    # reads as span boundaries.
    assert (a.start_us, a.end_us) == (0.0, 3.0)
    assert (b.start_us, b.end_us) == (1.0, 2.0)
    assert b.duration_us == 1.0


def test_attrs_merge_at_open_and_via_set(step_tracer):
    with step_tracer.span("s", grade="full") as span:
        span.set(nodes=7)
    assert span.attrs == {"grade": "full", "nodes": 7}


def test_exception_closes_the_span_and_stamps_error(step_tracer):
    with pytest.raises(ValueError):
        with step_tracer.span("doomed"):
            raise ValueError("boom")
    span = step_tracer.spans.one("doomed")
    assert span.finished
    assert span.attrs["error"] == "ValueError"


def test_events_are_instants_under_the_current_span(step_tracer):
    with step_tracer.span("op") as op:
        step_tracer.event("tick", key="k")
    event = step_tracer.spans.one("tick")
    assert event.kind == "event"
    assert event.parent is op
    assert event.end_us == event.start_us
    assert event.attrs == {"key": "k"}


# ---------------------------------------------------------------------------
# explicit begin/end + attach (event-driven nesting)
# ---------------------------------------------------------------------------

def test_begin_end_with_final_attrs(step_tracer):
    span = step_tracer.begin("request", id=1)
    step_tracer.end(span, status="ok")
    assert span.finished
    assert span.attrs == {"id": 1, "status": "ok"}


def test_end_is_idempotent(step_tracer):
    span = step_tracer.begin("once")
    step_tracer.end(span)
    first_end = span.end_us
    step_tracer.end(span, late=True)
    assert span.end_us == first_end
    assert span.attrs["late"] is True  # attrs still merge


def test_end_ignores_null_handles_and_none(step_tracer):
    step_tracer.end(None)
    step_tracer.end(_NULL_CONTEXT)     # a NullTracer-begun handle
    assert len(step_tracer.spans) == 0


def test_attach_reenters_an_open_span(step_tracer):
    request = step_tracer.begin("request")
    # ... later, from a scheduler callback:
    with step_tracer.attach(request):
        with step_tracer.span("work") as work:
            pass
    step_tracer.end(request)
    assert work.parent is request
    assert step_tracer.attach(None) is _NULL_CONTEXT


def test_root_sentinel_escapes_the_context_stack(step_tracer):
    with step_tracer.span("request"):
        attempt = step_tracer.begin("compile:attempt", parent=ROOT)
        event = step_tracer.event("compile:ready", parent=ROOT)
    step_tracer.end(attempt)
    assert attempt.parent is None
    assert event.parent is None
    assert len(step_tracer.roots()) == 3


def test_explicit_parent_overrides_the_stack(step_tracer):
    request = step_tracer.begin("request")
    with step_tracer.span("other"):
        event = step_tracer.event("respond", parent=request)
    assert event.parent is request


# ---------------------------------------------------------------------------
# the null path
# ---------------------------------------------------------------------------

def test_null_tracer_is_disabled_and_allocation_free():
    tracer = NullTracer()
    assert tracer.enabled is False
    assert tracer.span("x") is _NULL_CONTEXT
    assert tracer.begin("x") is _NULL_CONTEXT
    assert tracer.attach(object()) is _NULL_CONTEXT
    assert tracer.event("x") is None
    assert tracer.end(_NULL_CONTEXT) is None


def test_null_context_quacks_like_a_span():
    with NULL_TRACER.span("x", a=1) as handle:
        assert handle.set(b=2) is handle
    assert handle.attrs == {}
    assert handle.duration_us == 0.0
    assert handle.finished


def test_resolve_tracer():
    assert resolve_tracer(None) is NULL_TRACER
    tracer = Tracer(clock=StepClock())
    assert resolve_tracer(tracer) is tracer
    assert tracer.enabled is True


# ---------------------------------------------------------------------------
# SpanSet queries
# ---------------------------------------------------------------------------

def _sample(tracer):
    with tracer.span("compile:g"):
        with tracer.span("pass:dce", changed=False):
            pass
        with tracer.span("pass:cse", changed=True):
            pass
        tracer.event("cache:plan:miss")
    return tracer.spans


def test_spanset_filters(step_tracer):
    spans = _sample(step_tracer)
    assert spans.named("pass:*").names() == ["pass:dce", "pass:cse"]
    assert spans.events().names() == ["cache:plan:miss"]
    assert len(spans.intervals()) == 3
    assert spans.roots().names() == ["compile:g"]
    root = spans.one("compile:g")
    assert spans.within(root).names() == \
        ["pass:dce", "pass:cse", "cache:plan:miss"]


def test_spanset_one_raises_on_ambiguity(step_tracer):
    spans = _sample(step_tracer)
    with pytest.raises(AssertionError):
        spans.one("pass:*")
    with pytest.raises(AssertionError):
        spans.one("missing")
    assert spans.first("pass:*").name == "pass:dce"
    assert spans.first("missing") is None


def test_spanset_attr_values_and_summary(step_tracer):
    spans = _sample(step_tracer)
    assert spans.named("pass:*").attr_values("changed") == [False, True]
    summary = spans.summary()
    assert summary["pass:dce"]["count"] == 1
    assert summary["cache:plan:miss"] == {"count": 1, "total_us": 0.0}


def test_reset_clears_everything(step_tracer):
    _sample(step_tracer)
    step_tracer.reset()
    assert len(step_tracer.spans) == 0
    with step_tracer.span("fresh") as span:
        pass
    assert span.sid == 0


# ---------------------------------------------------------------------------
# threads
# ---------------------------------------------------------------------------

def test_threads_build_independent_subtrees():
    tracer = Tracer()
    barrier = threading.Barrier(2)

    def work(label: str) -> None:
        barrier.wait()
        with tracer.span(f"root:{label}"):
            for i in range(50):
                with tracer.span(f"{label}:{i}"):
                    pass

    threads = [threading.Thread(target=work, args=(name,))
               for name in ("a", "b")]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    # Each thread's context stack is its own: both roots are roots and
    # every child hangs under its own thread's root.
    roots = tracer.roots()
    assert sorted(roots.names()) == ["root:a", "root:b"]
    for label in ("a", "b"):
        root = tracer.spans.one(f"root:{label}")
        children = tracer.spans.within(root)
        assert len(children) == 50
        assert all(name.startswith(f"{label}:")
                   for name in children.names())
    # ids are unique despite concurrent assignment
    sids = [s.sid for s in tracer.spans]
    assert len(set(sids)) == len(sids) == 102


def test_capturing_tracer_conveniences(step_tracer):
    _sample(step_tracer)
    assert isinstance(step_tracer, CapturingTracer)
    assert step_tracer.named("pass:*").names() == \
        ["pass:dce", "pass:cse"]
    assert step_tracer.sequence()[0] == "compile:g"
    tree = step_tracer.tree()
    assert "compile:g" in tree and "  pass:dce" in tree
