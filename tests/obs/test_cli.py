"""The ``python -m repro.obs`` CLI: artifacts exist and carry the goods."""

import json
from pathlib import Path

from repro.obs.__main__ import main

CORPUS_DIR = Path(__file__).parent.parent / "regressions" / "corpus"


def chrome_names(path: Path) -> set:
    payload = json.loads(path.read_text())
    return {event["name"] for event in payload["traceEvents"]}


def test_model_trace_exports_chrome(tmp_path, capsys):
    rc = main(["--model", "bert", "--export", "chrome",
               "--out", str(tmp_path)])
    assert rc == 0
    chrome = tmp_path / "bert_chrome.json"
    assert chrome.exists()
    names = chrome_names(chrome)
    # the acceptance bar: pipeline-pass spans, kernel-launch spans and
    # cache events all present in the Perfetto-loadable trace.
    assert any(n.startswith("pass:") for n in names)
    assert any(n.startswith("kernel:") for n in names)
    assert "cache:plan:miss" in names and "cache:plan:hit" in names
    out = capsys.readouterr().out
    assert "traced bert" in out


def test_all_formats_and_metrics(tmp_path):
    rc = main(["--model", "crnn", "--export", "chrome,tree,jsonl",
               "--out", str(tmp_path), "--calls", "3"])
    assert rc == 0
    assert (tmp_path / "crnn_chrome.json").exists()
    assert (tmp_path / "crnn_tree.txt").exists()
    assert (tmp_path / "crnn_spans.jsonl").exists()
    metrics = json.loads((tmp_path / "crnn_metrics.json").read_text())
    # 3 calls: one record, two replays
    assert metrics["counters"]["spans.engine:run"] == 3
    assert metrics["counters"]["events.cache:plan:hit"] == 2
    tree = (tmp_path / "crnn_tree.txt").read_text()
    assert "compile:" in tree and "pass:" in tree


def test_serving_mode_traces_the_request_lifecycle(tmp_path):
    rc = main(["--model", "dien", "--serving", "--out", str(tmp_path),
               "--export", "jsonl"])
    assert rc == 0
    rows = [json.loads(line) for line in
            (tmp_path / "dien_spans.jsonl").read_text().splitlines()]
    names = [row["name"] for row in rows]
    assert names.count("request") == 2
    assert "serving:admit" in names and "serving:respond" in names
    assert "compile:attempt" in names and "fallback:run" in names


def test_corpus_case_replay(tmp_path):
    case = sorted(CORPUS_DIR.glob("case_*.json"))[0]
    rc = main(["--case", str(case), "--out", str(tmp_path)])
    assert rc == 0
    assert list(tmp_path.glob("*_chrome.json"))


def test_unknown_export_format_fails(tmp_path, capsys):
    rc = main(["--model", "bert", "--export", "pdf",
               "--out", str(tmp_path)])
    assert rc == 2
    assert "unknown export format" in capsys.readouterr().err
