"""Metrics registry: exact quantiles and the span-completion feed."""

import pytest

from repro.obs import (CapturingTracer, Counter, Gauge, Histogram,
                       MetricsRegistry)

from .conftest import StepClock


def test_counter_only_goes_up():
    c = Counter("requests")
    c.inc()
    c.inc(4)
    assert c.value == 5
    with pytest.raises(ValueError):
        c.inc(-1)


def test_gauge_moves_both_ways():
    g = Gauge("queue_depth")
    g.set(3)
    g.add(-2)
    assert g.value == 1.0


def test_histogram_quantiles_are_exact_nearest_rank():
    h = Histogram("latency")
    for value in range(1, 101):       # 1..100, shuffled order irrelevant
        h.observe(value)
    assert h.count == 100
    assert h.quantile(0.50) == 50
    assert h.quantile(0.90) == 90
    assert h.quantile(0.99) == 99
    assert h.quantile(0.0) == 1       # rank clamps to the minimum
    assert h.quantile(1.0) == 100
    # nearest-rank, not interpolation: p50 of four values is the 2nd.
    small = Histogram("small")
    for value in (10.0, 20.0, 30.0, 40.0):
        small.observe(value)
    assert small.quantile(0.5) == 20.0


def test_histogram_edge_cases():
    h = Histogram("empty")
    assert h.quantile(0.5) == 0.0
    assert h.snapshot() == {"count": 0}
    assert h.mean == 0.0
    with pytest.raises(ValueError):
        h.quantile(1.5)


def test_histogram_snapshot_fields():
    h = Histogram("h")
    for value in (1.0, 2.0, 3.0):
        h.observe(value)
    snap = h.snapshot()
    assert snap["count"] == 3
    assert snap["total"] == 6.0
    assert snap["mean"] == 2.0
    assert (snap["min"], snap["max"]) == (1.0, 3.0)
    assert snap["p50"] == 2.0


def test_registry_creates_on_first_touch_and_is_stable():
    registry = MetricsRegistry()
    assert registry.counter("a") is registry.counter("a")
    assert registry.gauge("g") is registry.gauge("g")
    assert registry.histogram("h") is registry.histogram("h")


def test_tracer_feeds_the_registry_on_completion():
    registry = MetricsRegistry()
    tracer = CapturingTracer(clock=StepClock(), metrics=registry)
    for _ in range(3):
        with tracer.span("engine:run"):
            pass
    tracer.event("cache:plan:hit")
    snap = registry.snapshot()
    assert snap["counters"]["spans.engine:run"] == 3
    assert snap["counters"]["events.cache:plan:hit"] == 1
    hist = snap["histograms"]["span_us.engine:run"]
    assert hist["count"] == 3
    # StepClock: every span is exactly one tick wide.
    assert hist["mean"] == 1.0


def test_unfinished_spans_never_reach_the_registry():
    registry = MetricsRegistry()
    tracer = CapturingTracer(clock=StepClock(), metrics=registry)
    tracer.begin("leaked")
    assert registry.snapshot()["counters"] == {}


def test_snapshot_is_json_able():
    import json

    registry = MetricsRegistry()
    registry.counter("c").inc()
    registry.gauge("g").set(1.5)
    registry.histogram("h").observe(2.0)
    parsed = json.loads(json.dumps(registry.snapshot()))
    assert parsed["gauges"]["g"] == 1.5
